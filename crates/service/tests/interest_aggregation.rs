//! Covering-based interest aggregation: equivalence and minimality.
//!
//! A federated broker forwards its subscription population to each
//! peer as a *covering antichain*: the minimal set of profiles such
//! that every local subscription is covered by some forwarded
//! profile. These tests assert the two directions of that contract
//! under randomized subscribe/unsubscribe churn:
//!
//! * **No false negatives** — every event matching a live local
//!   subscription matches the forwarded set, so the peer still
//!   forwards it (checked end-to-end: each subscriber receives
//!   exactly the matching remote events, even right after the
//!   covering representative of its profile was unsubscribed).
//! * **Minimality** — the forwarded set never exceeds the size of
//!   the true minimal covering antichain of the live population,
//!   recomputed from scratch by the `ens-types` covering oracle.

use std::collections::HashSet;
use std::sync::Arc;

use ens_service::federation::link::LinkConfig;
use ens_service::federation::sim::SimNet;
use ens_service::{Broker, BrokerConfig, Federation, FederationConfig, OverflowPolicy, Subscriber};
use ens_types::{
    profile_signature, CoverSet, Domain, Event, Predicate, Profile, ProfileId, Schema, Value,
};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::builder()
        .attribute("x", Domain::int(0, 99))
        .expect("static schema")
        .build()
}

fn event(s: &Schema, x: i64) -> Event {
    Event::builder(s).value("x", x).expect("in domain").build()
}

fn range_profile(s: &Schema, lo: i64, hi: i64) -> Profile {
    Profile::builder(s)
        .predicate("x", Predicate::between(lo, hi))
        .expect("in domain")
        .build(ProfileId::new(0))
}

fn fast_link() -> LinkConfig {
    LinkConfig {
        heartbeat_ms: 50,
        timeout_ms: 300,
        backoff_base_ms: 20,
        backoff_max_ms: 200,
        rto_ms: 40,
        send_window: 32,
        pending_cap: 0,
        overflow: OverflowPolicy::DropOldest,
    }
}

fn pair(net: &SimNet, aggregate: bool) -> (Federation, Federation) {
    let s = schema();
    let mk = |node: u64| {
        Federation::new(
            Arc::new(Broker::new(&s, BrokerConfig::default()).expect("broker")),
            FederationConfig {
                node,
                epoch: 1,
                aggregate_interest: aggregate,
                max_hops: 0,
                link: fast_link(),
            },
        )
    };
    let a = mk(1);
    let b = mk(2);
    a.add_peer(2, Box::new(net.transport(1, 2)), 0);
    b.add_peer(1, Box::new(net.transport(2, 1)), 0);
    (a, b)
}

fn pump_both(net: &SimNet, a: &Federation, b: &Federation, steps: u32) {
    for _ in 0..steps {
        let now = net.now_ms();
        a.pump(now).expect("pump a");
        b.pump(now).expect("pump b");
        net.advance(10);
    }
}

/// The size of the true minimal covering antichain of `live`:
/// distinct signatures, bulk-analysed by the covering oracle.
fn oracle_antichain(s: &Schema, live: &[Profile]) -> usize {
    let mut seen = HashSet::new();
    let mut distinct = Vec::new();
    for p in live {
        if seen.insert(profile_signature(s, p).expect("lowerable")) {
            distinct.push(p.clone());
        }
    }
    let slots: Vec<(u32, &Profile)> = distinct
        .iter()
        .enumerate()
        .map(|(i, p)| (u32::try_from(i).expect("small"), p))
        .collect();
    CoverSet::build_bulk(s, slots)
        .expect("lowerable")
        .rep_count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random subscribe/unsubscribe churn on interval profiles. After
    /// every converged step, the forwarded set must stay minimal, and
    /// probe events published at the peer must reach exactly the
    /// subscribers whose profiles match — i.e. the covering set never
    /// under-approximates the live population.
    #[test]
    fn churn_preserves_equivalence_and_minimality(
        ops in prop::collection::vec(
            // (subscribe?, lo, len): subscribe [lo, lo+len] or drop
            // the (lo % live)-th live subscription.
            (0u8..2, 0i64..90, 0i64..40),
            1..14,
        ),
    ) {
        let s = schema();
        let net = SimNet::new(99);
        let (a, b) = pair(&net, true);
        pump_both(&net, &a, &b, 6);

        let mut live: Vec<(Subscriber, Profile)> = Vec::new();
        for (subscribe, lo, len) in ops {
            if subscribe == 1 || live.is_empty() {
                let profile = range_profile(&s, lo, (lo + len).min(99));
                let sub = a.subscribe_profile(profile.clone()).expect("subscribe");
                live.push((sub, profile));
            } else {
                let idx = usize::try_from(lo).expect("positive") % live.len();
                let (sub, _) = live.swap_remove(idx);
                a.unsubscribe(sub.id()).expect("unsubscribe");
            }
            pump_both(&net, &a, &b, 4);

            // Minimality: never more forwarded rows than the true
            // minimal covering antichain of what is live right now.
            let profiles: Vec<Profile> = live.iter().map(|(_, p)| p.clone()).collect();
            let want = oracle_antichain(&s, &profiles);
            let got = a.forwarded_interest(2);
            prop_assert_eq!(
                got, want,
                "forwarded set must be the minimal covering antichain",
            );
        }

        // Equivalence: probe the domain from the peer; each live
        // subscriber must see exactly its matching events. A false
        // negative in the covering set would starve some subscriber.
        for (sub, _) in &live {
            let _ = sub.drain();
        }
        let probes: Vec<i64> = (0..100).step_by(7).collect();
        for &x in &probes {
            b.publish(&event(&s, x)).expect("publish");
        }
        pump_both(&net, &a, &b, 30);
        let attr = s.require("x").expect("x");
        for (sub, profile) in &live {
            let got: Vec<i64> = sub
                .drain()
                .iter()
                .map(|n| match n.event.value(attr) {
                    Some(Value::Int(i)) => *i,
                    other => panic!("unexpected value {other:?}"),
                })
                .collect();
            let want: Vec<i64> = probes
                .iter()
                .copied()
                .filter(|&x| profile.matches(&s, &event(&s, x)).expect("matches"))
                .collect();
            prop_assert_eq!(got, want, "subscriber must see exactly its matches");
        }
    }
}

#[test]
fn covered_subscription_causes_no_wire_traffic() {
    // A wide profile is forwarded; a narrower one arrives. With
    // aggregation the narrow profile is absorbed silently — the
    // forwarded count stays 1 and no further Subscribe crosses the
    // wire (measured by the link's sent-frame counter staying flat
    // modulo heartbeats/acks: the forwarded-interest ledger is what
    // we assert on).
    let s = schema();
    let net = SimNet::new(7);
    let (a, b) = pair(&net, true);
    pump_both(&net, &a, &b, 6);

    let _wide = a
        .subscribe_profile(range_profile(&s, 0, 99))
        .expect("subscribe");
    pump_both(&net, &a, &b, 4);
    assert_eq!(a.forwarded_interest(2), 1);

    let narrow = a
        .subscribe_profile(range_profile(&s, 40, 60))
        .expect("subscribe");
    pump_both(&net, &a, &b, 4);
    assert_eq!(
        a.forwarded_interest(2),
        1,
        "covered profile must not be forwarded"
    );

    // Events in the narrow range still arrive (forwarded via the
    // wide representative, dispatched locally to the narrow sub).
    b.publish(&event(&s, 50)).expect("publish");
    pump_both(&net, &a, &b, 10);
    assert_eq!(narrow.drain().len(), 1);
}

#[test]
fn unsubscribing_the_representative_promotes_the_covered() {
    // The wide representative goes away; the covering set must
    // promote the narrow profile it was standing in for — without a
    // gap (no false negatives) and without leaving the wide filter
    // in place (no stale over-forwarding).
    let s = schema();
    let net = SimNet::new(8);
    let (a, b) = pair(&net, true);
    pump_both(&net, &a, &b, 6);

    let wide = a
        .subscribe_profile(range_profile(&s, 0, 99))
        .expect("subscribe");
    let narrow = a
        .subscribe_profile(range_profile(&s, 40, 60))
        .expect("subscribe");
    pump_both(&net, &a, &b, 4);
    assert_eq!(a.forwarded_interest(2), 1);

    a.unsubscribe(wide.id()).expect("unsubscribe");
    pump_both(&net, &a, &b, 10);
    assert_eq!(a.forwarded_interest(2), 1, "narrow must be promoted");

    // In range: still delivered. Out of range: no longer forwarded
    // at all — the peer's filter now rejects it at the source.
    b.publish(&event(&s, 50)).expect("publish");
    b.publish(&event(&s, 10)).expect("publish");
    pump_both(&net, &a, &b, 20);
    assert_eq!(narrow.drain().len(), 1, "promoted profile keeps matching");
    assert_eq!(
        b.metrics().forwarded_rows,
        1,
        "the out-of-range event must not have crossed the wire"
    );
}

#[test]
fn aggregation_off_forwards_every_distinct_profile() {
    // Control: with aggregation disabled every distinct profile is
    // forwarded individually, duplicates still collapse by signature
    // (the echo-damping invariant that keeps cyclic meshes quiet).
    let s = schema();
    let net = SimNet::new(9);
    let (a, b) = pair(&net, false);
    pump_both(&net, &a, &b, 6);

    let _w = a
        .subscribe_profile(range_profile(&s, 0, 99))
        .expect("subscribe");
    let _n1 = a
        .subscribe_profile(range_profile(&s, 40, 60))
        .expect("subscribe");
    let _n2 = a
        .subscribe_profile(range_profile(&s, 40, 60))
        .expect("subscribe");
    pump_both(&net, &a, &b, 4);
    assert_eq!(
        a.forwarded_interest(2),
        2,
        "no covering analysis, but exact duplicates still collapse"
    );
    let _ = b;
}
