//! Multi-hop topology oracle suite: line, star, and tree overlays
//! against the full-mesh oracle, under seeded faults.
//!
//! A full mesh delivers every matching event to every subscriber
//! exactly once, in per-origin publish order, because each event
//! travels exactly one reliable FIFO link. These tests assert that a
//! *multi-hop* overlay (per-origin routing over a spanning tree,
//! bounded by a TTL hop budget) is observationally equivalent: for
//! every subscriber, the delivered stream equals the stream the full
//! mesh would have produced — computed analytically as "all matching
//! events from other brokers, per origin in publish order" — no
//! matter how many relays sit on the path, and no matter what the
//! seeded fault plan (drops, duplicates, reordering, partitions)
//! does to the links underneath.
//!
//! Loop freedom is asserted as a hard bound on forwarded rows: on an
//! acyclic overlay every accepted event crosses each undirected edge
//! at most once per direction, so the sum of forwarded rows across
//! all brokers can never exceed `2 * edges * published`.

use std::collections::HashMap;
use std::sync::Arc;

use ens_service::federation::link::LinkConfig;
use ens_service::federation::sim::{FaultPlan, SimNet};
use ens_service::{Broker, BrokerConfig, Federation, FederationConfig, OverflowPolicy};
use ens_types::{Domain, Event, Schema, Value};
use ens_workloads::{line_topology, star_topology, tree_topology, Topology};

fn schema() -> Schema {
    Schema::builder()
        .attribute("x", Domain::int(0, 99_999))
        .expect("static schema")
        .build()
}

fn event(s: &Schema, x: i64) -> Event {
    Event::builder(s).value("x", x).expect("in domain").build()
}

fn fast_link() -> LinkConfig {
    LinkConfig {
        heartbeat_ms: 50,
        timeout_ms: 300,
        backoff_base_ms: 20,
        backoff_max_ms: 200,
        rto_ms: 40,
        send_window: 32,
        pending_cap: 0,
        overflow: OverflowPolicy::DropOldest,
    }
}

/// One federated broker per topology node, each linked to exactly its
/// topology neighbours, with a hop budget covering the diameter.
fn build(net: &SimNet, topo: &Topology, epoch: u64) -> HashMap<u64, Federation> {
    let s = schema();
    let max_hops = u8::try_from(topo.diameter()).expect("small topologies");
    let mut feds = HashMap::new();
    for &node in &topo.nodes {
        let broker = Arc::new(Broker::new(&s, BrokerConfig::default()).expect("broker"));
        let f = Federation::new(
            broker,
            FederationConfig {
                node,
                epoch,
                aggregate_interest: true,
                max_hops,
                link: fast_link(),
            },
        );
        for peer in topo.neighbors(node) {
            f.add_peer(peer, Box::new(net.transport(node, peer)), 0);
        }
        feds.insert(node, f);
    }
    feds
}

fn pump_all(net: &SimNet, feds: &HashMap<u64, Federation>, steps: u32) {
    let mut nodes: Vec<u64> = feds.keys().copied().collect();
    nodes.sort_unstable();
    for _ in 0..steps {
        let now = net.now_ms();
        for n in &nodes {
            feds[n].pump(now).expect("pump");
        }
        net.advance(10);
    }
}

fn xs(s: &Schema, notifications: &[ens_service::Notification]) -> Vec<i64> {
    let attr = s.require("x").expect("x");
    notifications
        .iter()
        .map(|n| match n.event.value(attr) {
            Some(Value::Int(i)) => *i,
            other => panic!("unexpected value {other:?}"),
        })
        .collect()
}

/// The full-mesh oracle for one subscriber: every event published at
/// another broker that matches its profile, grouped per origin in
/// publish order. `published` maps origin -> xs in publish order.
fn oracle(
    published: &HashMap<u64, Vec<i64>>,
    subscriber: u64,
    matches: impl Fn(i64) -> bool,
) -> HashMap<u64, Vec<i64>> {
    let mut want = HashMap::new();
    for (&origin, values) in published {
        if origin == subscriber {
            continue;
        }
        let m: Vec<i64> = values.iter().copied().filter(|&x| matches(x)).collect();
        if !m.is_empty() {
            want.insert(origin, m);
        }
    }
    want
}

/// Splits a subscriber's delivered stream back into per-origin
/// sub-streams using the origin id encoded in the value
/// (`x = origin * 1000 + i`).
fn per_origin(xs: &[i64]) -> HashMap<u64, Vec<i64>> {
    let mut got: HashMap<u64, Vec<i64>> = HashMap::new();
    for &x in xs {
        got.entry(u64::try_from(x / 1000).expect("positive"))
            .or_default()
            .push(x);
    }
    got
}

/// Drives the topology through a faulty phase and checks every
/// subscriber against the full-mesh oracle.
fn run_topology(topo: &Topology, seed: u64, events_per_node: i64) {
    let net = SimNet::new(seed);
    let feds = build(&net, topo, 1);
    let s = schema();

    // Every broker subscribes to everything; values encode their
    // origin so the delivered stream can be split per origin.
    let mut subs = HashMap::new();
    for &node in &topo.nodes {
        subs.insert(
            node,
            feds[&node]
                .subscribe_parsed("profile(x >= 0)")
                .expect("subscribe"),
        );
    }
    // Let interest propagate across the whole overlay (hop by hop).
    pump_all(&net, &feds, 60);

    // Faulty middle: drops, duplicates, reordering, jitter.
    net.set_plan(FaultPlan {
        drop_p: 0.15,
        dup_p: 0.1,
        reorder_p: 0.1,
        torn_p: 0.01,
        delay_lo_ms: 0,
        delay_hi_ms: 20,
    });

    let mut published: HashMap<u64, Vec<i64>> = HashMap::new();
    for i in 0..events_per_node {
        for &node in &topo.nodes {
            let x = i64::try_from(node).expect("small") * 1000 + i;
            feds[&node].publish(&event(&s, x)).expect("publish");
            published.entry(node).or_default().push(x);
        }
        pump_all(&net, &feds, 2);
    }

    // Calm the network and drain retransmissions.
    net.set_plan(FaultPlan::default());
    pump_all(&net, &feds, 400);

    let total_published: u64 = published.values().map(|v| v.len() as u64).sum();
    let mut forwarded_total = 0;
    for &node in &topo.nodes {
        let delivered = xs(&s, &subs[&node].drain());
        // Local publishes notify the local subscriber too; the
        // cross-broker stream is everything from other origins.
        let remote: Vec<i64> = delivered
            .iter()
            .copied()
            .filter(|&x| u64::try_from(x / 1000).expect("positive") != node)
            .collect();
        let got = per_origin(&remote);
        let want = oracle(&published, node, |_| true);
        assert_eq!(
            got, want,
            "seed {seed}: subscriber {node} must see exactly the full-mesh \
             stream, per origin in publish order"
        );
        forwarded_total += feds[&node].metrics().forwarded_rows;
    }
    // Loop freedom: each event crosses each undirected edge at most
    // once per direction on an acyclic overlay.
    let bound = 2 * topo.edges.len() as u64 * total_published;
    assert!(
        forwarded_total <= bound,
        "seed {seed}: forwarded {forwarded_total} rows exceeds the acyclic \
         bound {bound} — a routing loop"
    );
}

#[test]
fn line_topology_matches_full_mesh_oracle_under_faults() {
    for seed in [3, 41] {
        run_topology(&line_topology(3), seed, 30);
    }
    run_topology(&line_topology(4), 77, 20);
}

#[test]
fn star_topology_matches_full_mesh_oracle_under_faults() {
    run_topology(&star_topology(5), 13, 20);
}

#[test]
fn tree_topology_matches_full_mesh_oracle_under_faults() {
    run_topology(&tree_topology(7), 29, 10);
}

#[test]
fn partition_and_heal_preserve_exactly_once_on_a_line() {
    // Sever the middle edge of 1—2—3 while 1 keeps publishing, then
    // heal: subscriber 3 must converge to the exact full stream with
    // no duplicates, because the reliable link replays the gap and
    // per-origin floors absorb anything the replay duplicates.
    let net = SimNet::new(5);
    let topo = line_topology(3);
    let feds = build(&net, &topo, 1);
    let s = schema();
    let sub = feds[&3]
        .subscribe_parsed("profile(x >= 0)")
        .expect("subscribe");
    pump_all(&net, &feds, 60);

    let mut want = Vec::new();
    for i in 0..10 {
        let x = 1000 + i;
        feds[&1].publish(&event(&s, x)).expect("publish");
        want.push(x);
        pump_all(&net, &feds, 2);
    }
    net.partition(2, 3);
    for i in 10..20 {
        let x = 1000 + i;
        feds[&1].publish(&event(&s, x)).expect("publish");
        want.push(x);
        pump_all(&net, &feds, 2);
    }
    pump_all(&net, &feds, 50);
    net.heal(2, 3);
    for i in 20..30 {
        let x = 1000 + i;
        feds[&1].publish(&event(&s, x)).expect("publish");
        want.push(x);
        pump_all(&net, &feds, 2);
    }
    pump_all(&net, &feds, 400);

    assert_eq!(
        xs(&s, &sub.drain()),
        want,
        "heal must recover the gap exactly"
    );
}

#[test]
fn restart_with_restored_origin_state_resumes_exactly_once() {
    // Broker 1 (the publisher on a 1—2—3 line) crashes and restarts.
    // Without durable origin state its origin sequences would restart
    // at 1 and every post-restart event would be swallowed by the
    // peers' per-origin floors as a duplicate. Restoring the counter
    // via `set_last_origin_seq` resumes the stream exactly-once.
    let net = SimNet::new(17);
    let topo = line_topology(3);
    let mut feds = build(&net, &topo, 1);
    let s = schema();
    let sub = feds[&3]
        .subscribe_parsed("profile(x >= 0)")
        .expect("subscribe");
    pump_all(&net, &feds, 60);

    let mut want = Vec::new();
    for i in 0..10 {
        let x = 1000 + i;
        feds[&1].publish(&event(&s, x)).expect("publish");
        want.push(x);
        pump_all(&net, &feds, 2);
    }
    pump_all(&net, &feds, 100);

    // Crash broker 1; persist its durable federation state — the
    // per-link receive floors (as `ens-fed-node` does on every pump)
    // and the origin-sequence counter (see `last_origin_seq`).
    let persisted_origin = feds[&1].last_origin_seq();
    assert_eq!(persisted_origin, 10, "ten events stamped");
    let persisted_floors = feds[&1].recv_floors();
    let floor_of = |peer: u64| {
        persisted_floors
            .iter()
            .find(|&&(p, _)| p == peer)
            .map_or(0, |&(_, f)| f)
    };
    feds.remove(&1);
    net.drop_link(1, 2);

    // Restart with a new epoch and the restored state.
    let broker = Arc::new(Broker::new(&s, BrokerConfig::default()).expect("broker"));
    let restarted = Federation::new(
        broker,
        FederationConfig {
            node: 1,
            epoch: 2,
            aggregate_interest: true,
            max_hops: u8::try_from(topo.diameter()).expect("small"),
            link: fast_link(),
        },
    );
    restarted.add_peer(2, Box::new(net.transport(1, 2)), floor_of(2));
    restarted.set_last_origin_seq(persisted_origin);
    feds.insert(1, restarted);
    pump_all(&net, &feds, 100);

    for i in 10..20 {
        let x = 1000 + i;
        feds[&1].publish(&event(&s, x)).expect("publish");
        want.push(x);
        pump_all(&net, &feds, 2);
    }
    pump_all(&net, &feds, 400);

    assert_eq!(
        xs(&s, &sub.drain()),
        want,
        "restored origin state must keep the post-restart stream flowing"
    );
    // The floors on broker 3 kept advancing monotonically.
    let floors = feds[&3].origin_floors();
    assert_eq!(
        floors,
        vec![(1, 20)],
        "floor tracks the highest accepted seq"
    );
}
