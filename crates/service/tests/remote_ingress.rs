//! Batched remote ingress composed with bounded subscriber channels.
//!
//! Remote `Batch` rows are resolved once at ingress and delivered
//! through the broker's block-matching path
//! (`publish_batch_prepared`). These tests pin down that the batched
//! path is observationally equivalent to the per-row path it
//! replaced, including its interaction with bounded notification
//! channels and every [`OverflowPolicy`]: the same rows arrive, the
//! same rows are shed, and the shed count is reported.

use std::sync::Arc;

use ens_service::federation::link::LinkConfig;
use ens_service::federation::sim::SimNet;
use ens_service::{Broker, BrokerConfig, Federation, FederationConfig, OverflowPolicy};
use ens_types::{Domain, Event, Schema, Value};

fn schema() -> Schema {
    Schema::builder()
        .attribute("x", Domain::int(0, 9_999))
        .expect("static schema")
        .build()
}

fn event(x: i64) -> Event {
    Event::builder(&schema())
        .value("x", x)
        .expect("in domain")
        .build()
}

fn fast_link() -> LinkConfig {
    LinkConfig {
        heartbeat_ms: 50,
        timeout_ms: 300,
        backoff_base_ms: 20,
        backoff_max_ms: 200,
        rto_ms: 40,
        send_window: 64,
        pending_cap: 0,
        overflow: OverflowPolicy::DropOldest,
    }
}

/// Publisher `a` (unbounded) and subscriber `b` whose local broker
/// bounds each notification channel at `capacity` under `policy`.
fn pair(net: &SimNet, capacity: usize, policy: OverflowPolicy) -> (Federation, Federation) {
    let s = schema();
    let a = Federation::new(
        Arc::new(Broker::new(&s, BrokerConfig::default()).expect("broker")),
        FederationConfig {
            node: 1,
            epoch: 1,
            link: fast_link(),
            ..FederationConfig::default()
        },
    );
    let b = Federation::new(
        Arc::new(
            Broker::new(
                &s,
                BrokerConfig {
                    notify_capacity: capacity,
                    overflow: policy,
                    ..BrokerConfig::default()
                },
            )
            .expect("broker"),
        ),
        FederationConfig {
            node: 2,
            epoch: 1,
            link: fast_link(),
            ..FederationConfig::default()
        },
    );
    a.add_peer(2, Box::new(net.transport(1, 2)), 0);
    b.add_peer(1, Box::new(net.transport(2, 1)), 0);
    (a, b)
}

fn pump_both(net: &SimNet, a: &Federation, b: &Federation, steps: u32) {
    for _ in 0..steps {
        let now = net.now_ms();
        a.pump(now).expect("pump a");
        b.pump(now).expect("pump b");
        net.advance(10);
    }
}

fn xs(notifications: &[ens_service::Notification]) -> Vec<i64> {
    let s = schema();
    let attr = s.require("x").expect("x");
    notifications
        .iter()
        .map(|n| match n.event.value(attr) {
            Some(Value::Int(i)) => *i,
            other => panic!("unexpected value {other:?}"),
        })
        .collect()
}

#[test]
fn remote_batch_delivery_matches_the_per_row_oracle() {
    // One forwarded batch, an unbounded subscriber: the delivered
    // stream equals the matching rows in publish order — exactly
    // what N single publishes produced before batched ingress.
    let net = SimNet::new(3);
    let (a, b) = pair(&net, 0, OverflowPolicy::DropOldest);
    let sub = b.subscribe_parsed("profile(x >= 100)").expect("subscribe");
    pump_both(&net, &a, &b, 6);

    let events: Vec<Arc<Event>> = (0..60).map(|i| Arc::new(event(90 + i))).collect();
    a.publish_batch(&events).expect("publish");
    pump_both(&net, &a, &b, 40);

    let want: Vec<i64> = (0..60).map(|i| 90 + i).filter(|&x| x >= 100).collect();
    assert_eq!(xs(&sub.drain()), want);
    assert_eq!(b.metrics().delivered_rows, want.len() as u64);
    // The non-matching prefix never crossed the wire.
    assert_eq!(a.metrics().forwarded_rows, want.len() as u64);
}

#[test]
fn drop_oldest_keeps_the_newest_suffix_and_reports_shedding() {
    // The remote batch overruns a capacity-8 channel: DropOldest
    // keeps the *last* 8 matching rows, sheds the rest, and the shed
    // count is visible on the subscriber.
    let net = SimNet::new(5);
    let (a, b) = pair(&net, 8, OverflowPolicy::DropOldest);
    let sub = b.subscribe_parsed("profile(x >= 0)").expect("subscribe");
    pump_both(&net, &a, &b, 6);

    let events: Vec<Arc<Event>> = (0..50).map(|i| Arc::new(event(i))).collect();
    a.publish_batch(&events).expect("publish");
    pump_both(&net, &a, &b, 40);

    // Delivery into the channel happened for every row (the broker
    // matched them all)...
    assert_eq!(b.metrics().delivered_rows, 50);
    // ...but the bounded channel kept only the newest 8.
    let got = xs(&sub.drain());
    assert_eq!(got, (42..50).collect::<Vec<i64>>());
    assert_eq!(sub.dropped(), 42, "shed rows must be counted, not silent");
}

#[test]
fn drop_newest_keeps_the_oldest_prefix() {
    let net = SimNet::new(6);
    let (a, b) = pair(&net, 8, OverflowPolicy::DropNewest);
    let sub = b.subscribe_parsed("profile(x >= 0)").expect("subscribe");
    pump_both(&net, &a, &b, 6);

    let events: Vec<Arc<Event>> = (0..50).map(|i| Arc::new(event(i))).collect();
    a.publish_batch(&events).expect("publish");
    pump_both(&net, &a, &b, 40);

    let got = xs(&sub.drain());
    assert_eq!(got, (0..8).collect::<Vec<i64>>());
    assert_eq!(sub.dropped(), 42);
}

#[test]
fn disconnect_policy_severs_the_laggard_but_not_the_federation() {
    // Disconnect kills the overflowing subscriber's channel; the
    // federation link itself keeps flowing and a healthy subscriber
    // added afterwards sees later batches.
    let net = SimNet::new(7);
    let (a, b) = pair(&net, 4, OverflowPolicy::Disconnect);
    let laggard = b.subscribe_parsed("profile(x >= 0)").expect("subscribe");
    pump_both(&net, &a, &b, 6);

    let events: Vec<Arc<Event>> = (0..30).map(|i| Arc::new(event(i))).collect();
    a.publish_batch(&events).expect("publish");
    pump_both(&net, &a, &b, 40);
    assert!(laggard.is_disconnected(), "overflow must disconnect");

    let healthy = b.subscribe_parsed("profile(x >= 0)").expect("subscribe");
    pump_both(&net, &a, &b, 6);
    let more: Vec<Arc<Event>> = (100..103).map(|i| Arc::new(event(i))).collect();
    a.publish_batch(&more).expect("publish");
    pump_both(&net, &a, &b, 40);
    assert_eq!(xs(&healthy.drain()), vec![100, 101, 102]);
}
