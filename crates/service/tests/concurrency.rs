//! Concurrency oracle: N concurrent publishers plus
//! subscribe/unsubscribe churn must produce *exactly* the notifications
//! a single-threaded oracle replay produces — per-subscriber sequence
//! order, no loss and no duplicates while subscribed — across shard
//! counts, dispatch modes and aggressive compaction policies.

use std::collections::HashMap;
use std::sync::Arc;

use ens_filter::RebuildPolicy;
use ens_service::{Broker, BrokerConfig};
use ens_types::{Domain, Event, Predicate, Profile, ProfileId, Schema};
use ens_workloads::{churn_burst_plan, scenario, ChurnOp, EventGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `publishers` concurrent publisher threads over pre-sampled
/// events while a churn thread subscribes/unsubscribes, then checks
/// every stable subscriber against the oracle.
fn run_churn_scenario(config: BrokerConfig, publishers: usize, events_per: usize, seed: u64) {
    let schema = scenario::environmental_schema();
    let mut rng = StdRng::seed_from_u64(seed);
    let stable_profiles: Vec<Profile> = scenario::environmental_profiles(12, &mut rng)
        .unwrap()
        .iter()
        .cloned()
        .collect();

    let broker = Arc::new(Broker::new(&schema, config).unwrap());
    let stable = broker
        .subscribe_many(stable_profiles.iter().cloned())
        .unwrap();

    let generator =
        EventGenerator::new(&schema, scenario::environmental_event_model().unwrap()).unwrap();
    let events: Vec<Arc<Event>> = (0..publishers * events_per)
        .map(|_| Arc::new(generator.sample(&mut rng)))
        .collect();

    // Churn source: the subscribe ops of a deterministic plan.
    let churn_profiles: Vec<Profile> = churn_burst_plan(seed ^ 0x5eed, 30, 0, 2)
        .unwrap()
        .ops
        .into_iter()
        .filter_map(|op| match op {
            ChurnOp::Subscribe(p) => Some(p),
            _ => None,
        })
        .collect();

    let seq_to_event: HashMap<u64, usize> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..publishers {
            let broker = Arc::clone(&broker);
            let slice = &events[t * events_per..(t + 1) * events_per];
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(slice.len());
                for (k, e) in slice.iter().enumerate() {
                    let receipt = broker.publish_shared(Arc::clone(e)).unwrap();
                    out.push((receipt.sequence, t * slice.len() + k));
                }
                out
            }));
        }
        let churn_broker = Arc::clone(&broker);
        let churn_profiles = &churn_profiles;
        let churner = scope.spawn(move || {
            for p in churn_profiles {
                let sub = churn_broker.subscribe_profile(p.clone()).unwrap();
                std::thread::yield_now();
                for n in sub.drain() {
                    // While subscribed, only matching events arrive.
                    assert!(
                        p.matches(churn_broker.schema(), &n.event).unwrap(),
                        "churn subscription received a non-matching event"
                    );
                }
                churn_broker.unsubscribe(sub.id()).unwrap();
            }
        });
        let mut map = HashMap::new();
        for h in handles {
            for (seq, idx) in h.join().unwrap() {
                assert!(map.insert(seq, idx).is_none(), "duplicate sequence {seq}");
            }
        }
        churner.join().unwrap();
        map
    });

    // Oracle: replay the events in sequence order, single-threaded.
    for (profile, sub) in stable_profiles.iter().zip(&stable) {
        let mut expected: Vec<u64> = seq_to_event
            .iter()
            .filter(|(_, idx)| profile.matches(&schema, &events[**idx]).unwrap())
            .map(|(seq, _)| *seq)
            .collect();
        expected.sort_unstable();
        let drained = sub.drain();
        let mut got: Vec<u64> = drained.iter().map(|n| n.sequence).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(
            got.len(),
            drained.len(),
            "subscriber {} received duplicates",
            sub.id()
        );
        assert_eq!(
            got,
            expected,
            "subscriber {} lost or gained events",
            sub.id()
        );
        for n in &drained {
            assert_eq!(
                n.event.as_ref(),
                events[seq_to_event[&n.sequence]].as_ref(),
                "sequence {} delivered the wrong event payload",
                n.sequence
            );
        }
    }
    let m = broker.metrics();
    assert_eq!(m.events_published, (publishers * events_per) as u64);
}

#[test]
fn concurrent_publishers_and_churn_match_oracle_single_shard() {
    run_churn_scenario(BrokerConfig::default(), 4, 150, 41);
}

#[test]
fn concurrent_publishers_and_churn_match_oracle_sharded_dfsa() {
    run_churn_scenario(
        BrokerConfig {
            shards: 3,
            dfsa_dispatch: true,
            stats_sample: 8,
            ..BrokerConfig::default()
        },
        4,
        150,
        42,
    );
}

#[test]
fn concurrent_publishers_and_churn_match_oracle_aggressive_compaction() {
    // Tiny thresholds force constant compaction + drift rebuilds while
    // publishers are in flight.
    run_churn_scenario(
        BrokerConfig {
            rebuild: RebuildPolicy {
                max_overlay: 2,
                max_removed: 2,
                min_events: 40,
                drift_threshold: 0.15,
                decay_on_rebuild: true,
                drift_check_every: 1,
            },
            shards: 2,
            ..BrokerConfig::default()
        },
        3,
        120,
        43,
    );
}

#[test]
fn publish_batch_is_ordered_and_matches_oracle() {
    let schema = scenario::environmental_schema();
    let mut rng = StdRng::seed_from_u64(9);
    let profiles: Vec<Profile> = scenario::environmental_profiles(50, &mut rng)
        .unwrap()
        .iter()
        .cloned()
        .collect();
    let broker = Broker::new(
        &schema,
        BrokerConfig {
            shards: 4,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let subs = broker.subscribe_many(profiles.iter().cloned()).unwrap();

    let generator =
        EventGenerator::new(&schema, scenario::environmental_event_model().unwrap()).unwrap();
    let events: Vec<Arc<Event>> = (0..400)
        .map(|_| Arc::new(generator.sample(&mut rng)))
        .collect();
    let receipts = broker.publish_batch(&events).unwrap();
    assert_eq!(receipts.len(), events.len());

    for (i, (receipt, event)) in receipts.iter().zip(&events).enumerate() {
        assert_eq!(receipt.sequence, i as u64, "receipts in input order");
        let expected: Vec<_> = profiles
            .iter()
            .zip(&subs)
            .filter(|(p, _)| p.matches(&schema, event).unwrap())
            .map(|(_, s)| s.id())
            .collect();
        assert_eq!(receipt.matched, expected, "event {i}");
    }

    // Batch delivery: every subscriber sees its notifications in strict
    // arrival == sequence order (not merely sortable).
    for (profile, sub) in profiles.iter().zip(&subs) {
        let drained = sub.drain();
        let arrival: Vec<u64> = drained.iter().map(|n| n.sequence).collect();
        let mut sorted = arrival.clone();
        sorted.sort_unstable();
        assert_eq!(arrival, sorted, "arrival order is sequence order");
        let expected: Vec<u64> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| profile.matches(&schema, e).unwrap())
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(arrival, expected, "subscriber {}", sub.id());
    }
}

// --- Property test: random profiles/events, concurrent replay ---------

fn small_schema() -> Schema {
    Schema::builder()
        .attribute("x", Domain::int(0, 99))
        .unwrap()
        .build()
}

fn arb_profile() -> impl Strategy<Value = (i64, i64)> {
    (0i64..100, 0i64..100).prop_map(|(a, b)| (a.min(b), a.max(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two concurrent publishers plus a churn thread over random range
    /// profiles: stable subscribers receive exactly the oracle set.
    #[test]
    fn prop_concurrent_oracle(
        ranges in prop::collection::vec(arb_profile(), 1..6),
        churn in prop::collection::vec(arb_profile(), 0..5),
        xs in prop::collection::vec(0i64..100, 16..80),
    ) {
        let schema = small_schema();
        let broker = Arc::new(
            Broker::new(
                &schema,
                BrokerConfig {
                    rebuild: RebuildPolicy { max_overlay: 1, ..RebuildPolicy::default() },
                    shards: 2,
                    ..BrokerConfig::default()
                },
            )
            .unwrap(),
        );
        let profiles: Vec<Profile> = ranges
            .iter()
            .map(|(lo, hi)| {
                Profile::builder(&schema)
                    .predicate("x", Predicate::between(*lo, *hi))
                    .unwrap()
                    .build(ProfileId::new(0))
            })
            .collect();
        let stable = broker.subscribe_many(profiles.iter().cloned()).unwrap();
        let events: Vec<Arc<Event>> = xs
            .iter()
            .map(|x| Arc::new(Event::builder(&schema).value("x", *x).unwrap().build()))
            .collect();

        let seq_of: HashMap<u64, usize> = std::thread::scope(|scope| {
            let half = events.len() / 2;
            let mut handles = Vec::new();
            for (t, slice) in [&events[..half], &events[half..]].into_iter().enumerate() {
                let broker = Arc::clone(&broker);
                handles.push(scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(k, e)| {
                            let r = broker.publish_shared(Arc::clone(e)).unwrap();
                            (r.sequence, t * half + k)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            let churn_broker = Arc::clone(&broker);
            let churn = &churn;
            let churner = scope.spawn(move || {
                for (lo, hi) in churn {
                    let sub = churn_broker
                        .subscribe(|b| b.predicate("x", Predicate::between(*lo, *hi)))
                        .unwrap();
                    std::thread::yield_now();
                    churn_broker.unsubscribe(sub.id()).unwrap();
                }
            });
            let mut map = HashMap::new();
            for h in handles {
                for (seq, idx) in h.join().unwrap() {
                    map.insert(seq, idx);
                }
            }
            churner.join().unwrap();
            map
        });

        for (profile, sub) in profiles.iter().zip(&stable) {
            let mut expected: Vec<u64> = seq_of
                .iter()
                .filter(|(_, idx)| profile.matches(&schema, &events[**idx]).unwrap())
                .map(|(seq, _)| *seq)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<u64> = sub.drain().iter().map(|n| n.sequence).collect();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
