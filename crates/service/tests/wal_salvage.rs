//! WAL frame resilience: salvage semantics under interior corruption,
//! plus property tests that replay a valid log through arbitrary
//! read-chunk boundaries and bit flips. The contract under test:
//! a flipped bit is always detected (per-frame CRC), and salvage never
//! yields a frame the oracle didn't write — corruption can only ever
//! *remove* records, never invent or alter them.

use ens_service::persist::{decode_wal, encode_frame, salvage_wal, WalRecord};
use ens_types::{Domain, Predicate, Profile, ProfileId, Schema};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::builder()
        .attribute("x", Domain::int(0, 999))
        .unwrap()
        .build()
}

/// One subscribe record per LSN, each with a distinct profile.
fn records(schema: &Schema, n: usize) -> Vec<WalRecord> {
    (0..n)
        .map(|i| WalRecord::Subscribe {
            lsn: i as u64 + 1,
            id: i as u64,
            weight: 1.0,
            profile: Profile::from_predicates(
                schema,
                ProfileId::new(0),
                vec![Predicate::ge((i as i64 * 37) % 1000)],
            )
            .unwrap(),
        })
        .collect()
}

/// Encodes `records` into a contiguous WAL image plus per-frame spans.
fn wal_image(records: &[WalRecord]) -> (Vec<u8>, Vec<(usize, usize)>) {
    let mut bytes = Vec::new();
    let mut spans = Vec::new();
    for record in records {
        let frame = encode_frame(record).unwrap();
        spans.push((bytes.len(), bytes.len() + frame.len()));
        bytes.extend_from_slice(&frame);
    }
    (bytes, spans)
}

#[test]
fn salvage_skips_a_corrupt_middle_frame_and_counts_it() {
    let schema = schema();
    let recs = records(&schema, 5);
    let (mut bytes, spans) = wal_image(&recs);

    // Flip a payload byte in the middle of frame 2 (0-based index 1).
    let (start, end) = spans[1];
    bytes[start + (end - start) / 2] ^= 0x40;

    let strict = decode_wal(&bytes);
    assert_eq!(strict.records.len(), 1, "strict decode stops at the hole");
    assert!(strict.torn);

    let scan = salvage_wal(&bytes);
    let lsns: Vec<u64> = scan.records.iter().map(WalRecord::lsn).collect();
    assert_eq!(lsns, vec![1, 3, 4, 5], "only the corrupt frame is lost");
    assert_eq!(scan.salvaged, 3, "frames recovered after the resync");
    assert_eq!(
        scan.quarantined,
        (end - start) as u64,
        "exactly the corrupt frame's bytes are quarantined"
    );
    assert!(!scan.torn, "the log end is reached cleanly");
    assert_eq!(scan.consumed, bytes.len());
}

#[test]
fn salvage_skips_a_zeroed_region() {
    let schema = schema();
    let recs = records(&schema, 4);
    let (mut bytes, spans) = wal_image(&recs);

    // Zero frame 3 wholesale — a dropped unsynced write turns into a
    // zero-filled gap on real disks and in the FaultFs crash model.
    let (start, end) = spans[2];
    for b in &mut bytes[start..end] {
        *b = 0;
    }

    let scan = salvage_wal(&bytes);
    let lsns: Vec<u64> = scan.records.iter().map(WalRecord::lsn).collect();
    assert_eq!(lsns, vec![1, 2, 4]);
    assert_eq!(scan.quarantined, (end - start) as u64);
}

#[test]
fn salvage_rejects_stale_lsns_on_resync() {
    let schema = schema();
    let recs = records(&schema, 3);
    // A(1) B(2) A(1) C(3): the duplicated old frame must not be
    // replayed out of order — salvage only moves forward in LSNs.
    let mut bytes = Vec::new();
    for record in [&recs[0], &recs[1], &recs[0], &recs[2]] {
        bytes.extend_from_slice(&encode_frame(record).unwrap());
    }
    let scan = salvage_wal(&bytes);
    let lsns: Vec<u64> = scan.records.iter().map(WalRecord::lsn).collect();
    assert_eq!(lsns, vec![1, 2, 3]);
    assert!(scan.quarantined > 0, "the stale duplicate is quarantined");
}

proptest! {
    /// Cutting a valid log at *any* byte boundary: salvage agrees with
    /// strict decode — the fully-contained frame prefix, torn iff the
    /// cut lands inside a frame.
    #[test]
    fn arbitrary_prefix_cuts_match_strict_decode(n in 1usize..6, cut_frac in 0.0f64..=1.0) {
        let schema = schema();
        let recs = records(&schema, n);
        let (bytes, _) = wal_image(&recs);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let prefix = &bytes[..cut.min(bytes.len())];

        let strict = decode_wal(prefix);
        let scan = salvage_wal(prefix);
        let strict_lsns: Vec<u64> = strict.records.iter().map(WalRecord::lsn).collect();
        let lsns: Vec<u64> = scan.records.iter().map(WalRecord::lsn).collect();
        prop_assert_eq!(lsns, strict_lsns);
        prop_assert_eq!(scan.torn, strict.torn);
        prop_assert_eq!(scan.consumed, strict.consumed);
        prop_assert_eq!(scan.salvaged, 0);
        prop_assert_eq!(scan.quarantined, 0);
    }

    /// One or two bit flips anywhere in the log: every record salvage
    /// returns re-encodes to a frame the oracle actually wrote (the
    /// CRC never lets an altered payload through), and at most one
    /// frame is lost per flip.
    #[test]
    fn bit_flips_are_always_detected_and_never_fabricate_frames(
        n in 1usize..6,
        flips in prop::collection::vec((0.0f64..1.0, 0u8..8), 1..=2),
    ) {
        let schema = schema();
        let recs = records(&schema, n);
        let (mut bytes, _) = wal_image(&recs);
        let originals: Vec<Vec<u8>> = recs.iter().map(|r| encode_frame(r).unwrap()).collect();

        let mut flipped = std::collections::BTreeSet::new();
        for (frac, bit) in &flips {
            let pos = ((bytes.len() as f64) * frac) as usize;
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] ^= 1 << bit;
            flipped.insert(pos);
        }

        let scan = salvage_wal(&bytes);
        for record in &scan.records {
            let frame = encode_frame(record).unwrap();
            prop_assert!(
                originals.contains(&frame),
                "salvage produced a frame the oracle never wrote: lsn {}",
                record.lsn()
            );
        }
        // Each flipped byte can take down at most the frame containing
        // it (self-cancelling double flips restore the original log).
        prop_assert!(
            scan.records.len() + flipped.len() >= n,
            "{} records survived {} flips of {} frames",
            scan.records.len(),
            flipped.len(),
            n
        );
        // LSNs strictly increase — replay order is never scrambled.
        for pair in scan.records.windows(2) {
            prop_assert!(pair[0].lsn() < pair[1].lsn());
        }
    }
}
