use std::sync::Arc;
use std::time::Duration;

use ens_types::Event;

use crate::channel::Receiver;
use crate::subscription::SubscriptionId;

/// A delivered event notification.
///
/// The event is shared: the broker allocates one [`Arc`] per publish
/// and every matched subscriber receives a handle to the same
/// allocation, so fan-out to thousands of subscribers copies pointers,
/// not event payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The subscription this notification belongs to.
    pub subscription: SubscriptionId,
    /// Sequence number of the event within the broker (publish order).
    pub sequence: u64,
    /// The matching event (shared with all other subscribers it matched).
    pub event: Arc<Event>,
}

/// The consumer half of a subscription: a handle on the notification
/// channel.
///
/// Dropping the subscriber closes the channel; the broker detects this
/// and garbage-collects the subscription on the next publish. The
/// channel is bounded by [`BrokerConfig::notify_capacity`]
/// (unbounded by default), with overflow resolved by the configured
/// [`OverflowPolicy`](crate::OverflowPolicy); [`Subscriber::dropped`]
/// reports how many notifications this channel has lost to it.
///
/// [`BrokerConfig::notify_capacity`]: crate::BrokerConfig::notify_capacity
#[derive(Debug)]
pub struct Subscriber {
    id: SubscriptionId,
    rx: Receiver<Notification>,
}

impl Subscriber {
    pub(crate) fn new(id: SubscriptionId, rx: Receiver<Notification>) -> Self {
        Subscriber { id, rx }
    }

    /// The subscription this handle consumes.
    #[must_use]
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Non-blocking receive.
    #[must_use]
    pub fn try_recv(&self) -> Option<Notification> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive with a timeout.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Notification> {
        self.rx.recv_timeout(timeout)
    }

    /// Drains everything currently queued.
    #[must_use]
    pub fn drain(&self) -> Vec<Notification> {
        let mut out = Vec::new();
        while let Some(n) = self.try_recv() {
            out.push(n);
        }
        out
    }

    /// Number of queued notifications.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Notifications this subscription's channel has lost to its
    /// overflow policy (0 on unbounded channels).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.rx.dropped()
    }

    /// Whether the channel has been severed: the broker dropped its
    /// sender (subscription cancelled) or an
    /// [`OverflowPolicy::Disconnect`](crate::OverflowPolicy::Disconnect)
    /// overflow closed it. Queued notifications may still be pending.
    #[must_use]
    pub fn is_disconnected(&self) -> bool {
        self.rx.is_disconnected()
    }
}
