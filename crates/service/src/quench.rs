//! Quenching: telling producers which events can never match.
//!
//! The Elvin system "includes a quenching mechanism that discards
//! unneeded information without consuming resources" (paper §2). In the
//! subrange vocabulary of this workspace that is precisely the
//! zero-subdomain `D0`: an event carrying, on any attribute, a value no
//! profile references (and with no don't-care profile present) cannot
//! match anything and need not be sent at all.
//!
//! [`QuenchAdvice`] is the broker's exportable summary of covered value
//! ranges per attribute; producers (or the broker itself, as a
//! pre-filter) use [`QuenchAdvice::allows`] to drop dead events early.

use ens_filter::AttributePartition;
use ens_types::{
    AttrId, Event, IndexInterval, IndexedEvent, IntervalSet, ProfileSet, Schema, TypesError,
};

/// Per-attribute coverage map derived from the current profile set.
///
/// # Example
///
/// ```
/// use ens_service::{Broker, BrokerConfig};
/// use ens_types::{Schema, Domain, Predicate, Event};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::builder().attribute("x", Domain::int(0, 99))?.build();
/// let broker = Broker::new(&schema, BrokerConfig::default())?;
/// let _sub = broker.subscribe(|b| b.predicate("x", Predicate::between(10, 19)))?;
///
/// let advice = broker.quench_advice();
/// let dead = Event::builder(&schema).value("x", 50)?.build();
/// let live = Event::builder(&schema).value("x", 15)?.build();
/// assert!(!advice.allows(&dead)?);
/// assert!(advice.allows(&live)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuenchAdvice {
    schema: Schema,
    covered: Vec<IntervalSet>,
}

impl QuenchAdvice {
    /// Derives the advice from the filter's per-attribute partitions.
    #[must_use]
    pub fn from_partitions(schema: &Schema, partitions: &[AttributePartition]) -> Self {
        let covered = partitions
            .iter()
            .map(|p| {
                if !p.dont_care_profiles().is_empty() {
                    IntervalSet::full(p.domain_size())
                } else {
                    p.referenced_cells()
                        .map(|c| *c.interval())
                        .collect::<IntervalSet>()
                }
            })
            .collect();
        QuenchAdvice {
            schema: schema.clone(),
            covered,
        }
    }

    /// Derives the advice directly from a profile set (partitions every
    /// attribute first). The partition-based
    /// [`QuenchAdvice::from_partitions`] is cheaper when a filter
    /// already holds the partitions.
    ///
    /// # Errors
    ///
    /// Propagates predicate lowering errors.
    pub fn from_profiles(
        schema: &Schema,
        profiles: &ProfileSet,
    ) -> Result<Self, ens_filter::FilterError> {
        let partitions: Result<Vec<AttributePartition>, _> = schema
            .iter()
            .map(|(id, a)| AttributePartition::build(profiles.iter(), id, a.domain()))
            .collect();
        Ok(Self::from_partitions(schema, &partitions?))
    }

    /// The covered value ranges of `attr` (domain-index space).
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range for the schema.
    #[must_use]
    pub fn covered(&self, attr: AttrId) -> &IntervalSet {
        &self.covered[attr.index()]
    }

    /// Whether the event could match *any* profile. `false` means the
    /// event may be dropped ("rejected as early as possible", §5).
    ///
    /// Missing attribute values never quench: they only exclude profiles
    /// that specify the attribute.
    ///
    /// # Errors
    ///
    /// Propagates domain errors for ill-typed event values.
    pub fn allows(&self, event: &Event) -> Result<bool, TypesError> {
        for (id, a) in self.schema.iter() {
            if let Some(v) = event.value(id) {
                let idx = a.domain().index_of(v)?;
                if !self.covered[id.index()].contains(idx) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// [`QuenchAdvice::allows`] over an already-resolved event — the
    /// allocation-free form the broker's hot path uses (domain indices
    /// were validated during resolution, so no error is possible).
    #[must_use]
    pub fn allows_indexed(&self, event: &IndexedEvent) -> bool {
        for (k, &idx) in event.raw().iter().enumerate() {
            if idx != IndexedEvent::MISSING
                && k < self.covered.len()
                && !self.covered[k].contains(idx)
            {
                return false;
            }
        }
        true
    }

    /// The fraction of each attribute's domain that is covered — a
    /// producer-facing summary of how much traffic quenching can save.
    #[must_use]
    pub fn coverage_fractions(&self) -> Vec<f64> {
        self.schema
            .iter()
            .map(|(id, a)| self.covered[id.index()].covered_len() as f64 / a.domain().size() as f64)
            .collect()
    }

    /// A conservative quenchable interval list per attribute: values a
    /// producer may drop at the source.
    #[must_use]
    pub fn quenchable(&self, attr: AttrId) -> Vec<IndexInterval> {
        let d = self.schema.attribute(attr).domain().size();
        self.covered[attr.index()]
            .complement(d)
            .iter()
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ens_types::{Domain, Predicate, ProfileSet};

    fn setup() -> (Schema, ProfileSet) {
        let schema = Schema::builder()
            .attribute("x", Domain::int(0, 99))
            .unwrap()
            .attribute("y", Domain::int(0, 9))
            .unwrap()
            .build();
        let mut ps = ProfileSet::new(&schema);
        ps.insert_with(|b| b.predicate("x", Predicate::between(10, 19)))
            .unwrap();
        ps.insert_with(|b| {
            b.predicate("x", Predicate::ge(80))?
                .predicate("y", Predicate::eq(3))
        })
        .unwrap();
        (schema, ps)
    }

    fn advice(schema: &Schema, ps: &ProfileSet) -> QuenchAdvice {
        let parts: Vec<AttributePartition> = schema
            .iter()
            .map(|(id, a)| AttributePartition::build(ps.iter(), id, a.domain()).unwrap())
            .collect();
        QuenchAdvice::from_partitions(schema, &parts)
    }

    #[test]
    fn quenches_zero_subdomain_values() {
        let (schema, ps) = setup();
        let q = advice(&schema, &ps);
        let dead_x = Event::builder(&schema)
            .value("x", 50)
            .unwrap()
            .value("y", 3)
            .unwrap()
            .build();
        assert!(!q.allows(&dead_x).unwrap());
        let live = Event::builder(&schema)
            .value("x", 15)
            .unwrap()
            .value("y", 9)
            .unwrap()
            .build();
        // y = 9 is uncovered… but profile 0 doesn't care about y, so y is
        // fully covered by the don't-care rule.
        assert!(q.allows(&live).unwrap());
    }

    #[test]
    fn quench_agrees_with_oracle() {
        let (schema, ps) = setup();
        let q = advice(&schema, &ps);
        for x in 0..100 {
            for y in 0..10 {
                let e = Event::builder(&schema)
                    .value("x", x)
                    .unwrap()
                    .value("y", y)
                    .unwrap()
                    .build();
                let matches = !ps.matches(&e).unwrap().is_empty();
                let allowed = q.allows(&e).unwrap();
                // Quenching must never drop a matchable event.
                assert!(!matches || allowed, "quench dropped a match at ({x},{y})");
            }
        }
    }

    #[test]
    fn coverage_fractions_and_quenchable() {
        let (schema, ps) = setup();
        let q = advice(&schema, &ps);
        let fr = q.coverage_fractions();
        assert!(
            (fr[0] - 0.3).abs() < 1e-12,
            "x: [10,19] + [80,99] = 30 of 100"
        );
        assert_eq!(fr[1], 1.0, "y is covered by don't-care");
        let dead = q.quenchable(AttrId::new(0));
        assert_eq!(dead.len(), 2, "[0,10) and (19,80)");
        assert!(q.quenchable(AttrId::new(1)).is_empty());
    }

    #[test]
    fn missing_values_do_not_quench() {
        let (schema, ps) = setup();
        let q = advice(&schema, &ps);
        let partial = Event::builder(&schema).build();
        assert!(q.allows(&partial).unwrap());
    }
}
