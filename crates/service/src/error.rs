use std::fmt;

use ens_filter::FilterError;
use ens_types::TypesError;

use crate::subscription::SubscriptionId;

/// Errors produced by the notification service.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// A filter operation failed.
    Filter(FilterError),
    /// A data-model operation failed.
    Types(TypesError),
    /// The referenced subscription does not exist (or was cancelled).
    UnknownSubscription(SubscriptionId),
    /// The referenced composite definition does not exist.
    UnknownComposite(u64),
    /// Durable state (WAL or checkpoint) could not be written or
    /// recovered.
    Persist(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Filter(e) => write!(f, "{e}"),
            ServiceError::Types(e) => write!(f, "{e}"),
            ServiceError::UnknownSubscription(id) => {
                write!(f, "unknown subscription {id}")
            }
            ServiceError::UnknownComposite(id) => write!(f, "unknown composite definition {id}"),
            ServiceError::Persist(msg) => write!(f, "durable state error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Filter(e) => Some(e),
            ServiceError::Types(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FilterError> for ServiceError {
    fn from(e: FilterError) -> Self {
        ServiceError::Filter(e)
    }
}

impl From<TypesError> for ServiceError {
    fn from(e: TypesError) -> Self {
        ServiceError::Types(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ServiceError = TypesError::NonFiniteValue.into();
        assert!(e.to_string().contains("finite"));
        let e: ServiceError = FilterError::EmptyProfileSet.into();
        assert!(e.to_string().contains("empty"));
        let e = ServiceError::UnknownSubscription(SubscriptionId::new(9));
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<ServiceError>();
    }
}
