//! Event notification service built on the distribution-based filter.
//!
//! The paper positions its algorithm inside an Event Notification
//! Service (ENS) and announces GENAS, "a generic parameterized Event
//! Notification System … based on the filter algorithm introduced here"
//! (§5). This crate is that service layer:
//!
//! * [`Broker`] — thread-safe subscribe/publish hub delivering
//!   [`Notification`]s over channels, filtering through an
//!   [`AdaptiveFilter`](ens_filter::AdaptiveFilter) that restructures
//!   its profile tree as the observed event distribution drifts;
//! * [`QuenchAdvice`] — Elvin-style quenching (§2): producers learn
//!   which value ranges no subscription references and can drop dead
//!   events at the source;
//! * [`CompositeDetector`] — composite events (sequence, conjunction,
//!   disjunction over time windows), the §5 future-work extension;
//! * [`MetricsSnapshot`] — service counters (events, notifications,
//!   comparison operations, rebuilds).
//!
//! # Example
//!
//! ```
//! use ens_service::{Broker, BrokerConfig};
//! use ens_types::{Schema, Domain, Predicate, Event};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schema = Schema::builder()
//!     .attribute("temperature", Domain::int(-30, 50))?
//!     .attribute("humidity", Domain::int(0, 100))?
//!     .build();
//! let broker = Broker::new(&schema, BrokerConfig::default())?;
//!
//! let alerts = broker.subscribe_parsed("profile(temperature >= 35; humidity >= 90)")?;
//! broker.publish(
//!     &Event::builder(&schema).value("temperature", 40)?.value("humidity", 95)?.build(),
//! )?;
//! assert!(alerts.try_recv().is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod channel;
mod composite;
mod error;
pub mod federation;
mod metrics;
mod notify;
pub mod persist;
mod quench;
mod subscription;
pub mod vfs;

pub use broker::{Broker, BrokerConfig, PublishReceipt, Recovered};
pub use channel::OverflowPolicy;
pub use composite::{CompositeDetector, CompositeExpr, CompositeId};
pub use error::ServiceError;
pub use federation::{Federation, FederationConfig};
pub use metrics::MetricsSnapshot;
pub use notify::{Notification, Subscriber};
pub use persist::{DurabilityConfig, FsyncPolicy};
pub use quench::QuenchAdvice;
pub use subscription::SubscriptionId;
pub use vfs::{FaultFs, FaultPlan, OsFs, Vfs, VfsFile};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, ServiceError>;

#[cfg(test)]
mod broker_tests {
    use super::*;
    use ens_filter::{Direction, RebuildPolicy, SearchStrategy, TreeConfig, ValueOrder};
    use ens_types::{Domain, Event, Predicate, Schema};

    fn schema() -> Schema {
        Schema::builder()
            .attribute("temperature", Domain::int(-30, 50))
            .unwrap()
            .attribute("humidity", Domain::int(0, 100))
            .unwrap()
            .build()
    }

    fn event(s: &Schema, t: i64, h: i64) -> Event {
        Event::builder(s)
            .value("temperature", t)
            .unwrap()
            .value("humidity", h)
            .unwrap()
            .build()
    }

    #[test]
    fn subscribe_publish_notify() {
        let s = schema();
        let broker = Broker::new(&s, BrokerConfig::default()).unwrap();
        let hot = broker
            .subscribe(|b| b.predicate("temperature", Predicate::ge(35)))
            .unwrap();
        let humid = broker
            .subscribe(|b| b.predicate("humidity", Predicate::ge(90)))
            .unwrap();
        assert_eq!(broker.subscription_count(), 2);

        let receipt = broker.publish(&event(&s, 40, 95)).unwrap();
        assert_eq!(receipt.matched.len(), 2);
        assert_eq!(hot.try_recv().unwrap().sequence, 0);
        assert_eq!(humid.try_recv().unwrap().sequence, 0);

        let receipt = broker.publish(&event(&s, 40, 10)).unwrap();
        assert_eq!(receipt.matched, vec![hot.id()]);
        assert!(hot.try_recv().is_some());
        assert!(humid.try_recv().is_none());
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let s = schema();
        let broker = Broker::new(&s, BrokerConfig::default()).unwrap();
        let hot = broker
            .subscribe(|b| b.predicate("temperature", Predicate::ge(35)))
            .unwrap();
        broker.unsubscribe(hot.id()).unwrap();
        assert!(broker.unsubscribe(hot.id()).is_err(), "double cancel");
        let receipt = broker.publish(&event(&s, 40, 95)).unwrap();
        assert!(receipt.matched.is_empty());
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn dropped_subscriber_is_garbage_collected() {
        let s = schema();
        let broker = Broker::new(&s, BrokerConfig::default()).unwrap();
        let hot = broker
            .subscribe(|b| b.predicate("temperature", Predicate::ge(35)))
            .unwrap();
        drop(hot);
        broker.publish(&event(&s, 40, 95)).unwrap();
        assert_eq!(broker.subscription_count(), 0);
        assert_eq!(broker.metrics().dropped_notifications, 1);
    }

    #[test]
    fn quench_inbound_drops_dead_events() {
        let s = schema();
        let config = BrokerConfig {
            quench_inbound: true,
            ..BrokerConfig::default()
        };
        let broker = Broker::new(&s, config).unwrap();
        let _hot = broker
            .subscribe(|b| b.predicate("temperature", Predicate::ge(35)))
            .unwrap();
        // humidity is don't-care everywhere; temperature < 35 is dead.
        let receipt = broker.publish(&event(&s, 0, 50)).unwrap();
        assert!(receipt.quenched);
        assert_eq!(receipt.ops, 0);
        let m = broker.metrics();
        assert_eq!(m.quenched_events, 1);
        // A matchable event passes.
        let receipt = broker.publish(&event(&s, 40, 50)).unwrap();
        assert!(!receipt.quenched);
        assert_eq!(receipt.matched.len(), 1);
    }

    #[test]
    fn history_ring_buffer() {
        let s = schema();
        let config = BrokerConfig {
            history_capacity: 2,
            ..BrokerConfig::default()
        };
        let broker = Broker::new(&s, config).unwrap();
        for t in [1, 2, 3] {
            broker.publish(&event(&s, t, 0)).unwrap();
        }
        let recent = broker.recent_events();
        assert_eq!(recent.len(), 2);
        let t0 = s.attr("temperature").unwrap();
        assert_eq!(recent[0].value(t0), Some(&ens_types::Value::Int(2)));
        assert_eq!(recent[1].value(t0), Some(&ens_types::Value::Int(3)));
    }

    #[test]
    fn metrics_accumulate() {
        let s = schema();
        let broker = Broker::new(&s, BrokerConfig::default()).unwrap();
        let sub = broker
            .subscribe(|b| b.predicate("temperature", Predicate::ge(35)))
            .unwrap();
        for t in [40, 45, 0] {
            broker.publish(&event(&s, t, 0)).unwrap();
        }
        let m = broker.metrics();
        assert_eq!(m.events_published, 3);
        assert_eq!(m.notifications_sent, 2);
        assert!(m.total_ops > 0);
        assert!(m.avg_ops_per_event() > 0.0);
        assert_eq!(m.subscriptions, 1);
        assert_eq!(sub.pending(), 2);
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn adaptive_broker_restructures_under_drift() {
        let s = schema();
        let config = BrokerConfig {
            tree: TreeConfig {
                search: SearchStrategy::Linear(ValueOrder::EventProb(Direction::Descending)),
                ..TreeConfig::default()
            },
            rebuild: RebuildPolicy {
                min_events: 50,
                drift_threshold: 0.2,
                decay_on_rebuild: true,
                ..RebuildPolicy::default()
            },
            ..BrokerConfig::default()
        };
        let broker = Broker::new(&s, config).unwrap();
        let _a = broker
            .subscribe(|b| b.predicate("temperature", Predicate::between(-30, -20)))
            .unwrap();
        let _b = broker
            .subscribe(|b| b.predicate("temperature", Predicate::between(40, 50)))
            .unwrap();
        for _ in 0..200 {
            broker.publish(&event(&s, 45, 50)).unwrap();
        }
        assert!(broker.metrics().tree_rebuilds >= 1);
        // Matching still correct after rebuilds.
        let receipt = broker.publish(&event(&s, -25, 0)).unwrap();
        assert_eq!(receipt.matched.len(), 1);
    }

    #[test]
    fn weighted_subscriptions_are_served_first_under_v2() {
        let s = schema();
        // `max_overlay: 0` compiles every subscription immediately, so
        // the weighted V2 ordering applies from the first publish.
        let config = BrokerConfig {
            tree: TreeConfig {
                search: SearchStrategy::Linear(ValueOrder::ProfileProb(Direction::Descending)),
                ..TreeConfig::default()
            },
            rebuild: RebuildPolicy {
                max_overlay: 0,
                ..RebuildPolicy::default()
            },
            ..BrokerConfig::default()
        };
        let broker = Broker::new(&s, config).unwrap();
        let low_priority = broker
            .subscribe(|b| b.predicate("temperature", Predicate::between(-20, -10)))
            .unwrap();
        let vip_profile = ens_types::Profile::builder(&s)
            .predicate("temperature", Predicate::between(40, 45))
            .unwrap()
            .build(ens_types::ProfileId::new(0));
        let vip = broker
            .subscribe_profile_weighted(vip_profile.clone(), 50.0)
            .unwrap();
        // The VIP band sits naturally *after* the low-priority band, but
        // the weighted V2 order scans it first: 1 op at the temperature
        // node plus the `*` humidity level.
        let receipt = broker.publish(&event(&s, 42, 0)).unwrap();
        assert_eq!(receipt.matched, vec![vip.id()]);
        assert_eq!(receipt.ops, 2);
        // Control: without the weight the VIP band is scanned second.
        let control = Broker::new(
            &s,
            BrokerConfig {
                tree: TreeConfig {
                    search: SearchStrategy::Linear(ValueOrder::ProfileProb(Direction::Descending)),
                    ..TreeConfig::default()
                },
                rebuild: RebuildPolicy {
                    max_overlay: 0,
                    ..RebuildPolicy::default()
                },
                ..BrokerConfig::default()
            },
        )
        .unwrap();
        let _a = control
            .subscribe(|b| b.predicate("temperature", Predicate::between(-20, -10)))
            .unwrap();
        let _b = control.subscribe_profile(vip_profile).unwrap();
        let receipt = control.publish(&event(&s, 42, 0)).unwrap();
        assert_eq!(receipt.ops, 3, "unweighted V2 scans the VIP band second");
        drop(low_priority);
        // Invalid weights are rejected.
        let p = ens_types::Profile::builder(&s).build(ens_types::ProfileId::new(0));
        assert!(broker.subscribe_profile_weighted(p, 0.0).is_err());
    }

    #[test]
    fn subscribe_many_rolls_back_on_invalid_profile() {
        let s = schema();
        let broker = Broker::new(&s, BrokerConfig::default()).unwrap();
        let good = ens_types::Profile::builder(&s)
            .predicate("temperature", Predicate::ge(35))
            .unwrap()
            .build(ens_types::ProfileId::new(0));
        // A profile built against a wider foreign schema: its predicate
        // value lies outside the broker schema's domain, so compaction
        // fails when the profile is lowered.
        let other = Schema::builder()
            .attribute("temperature", Domain::int(-1000, 1000))
            .unwrap()
            .attribute("humidity", Domain::int(0, 100))
            .unwrap()
            .build();
        let bad = ens_types::Profile::builder(&other)
            .predicate("temperature", Predicate::between(400, 500))
            .unwrap()
            .build(ens_types::ProfileId::new(0));
        assert!(broker.subscribe_many([good.clone(), bad]).is_err());
        assert_eq!(
            broker.subscription_count(),
            0,
            "failed bulk load must leave no phantom subscriptions"
        );
        // The shard is not poisoned: later subscribes and publishes work.
        let sub = broker.subscribe_profile(good).unwrap();
        let receipt = broker.publish(&event(&s, 40, 95)).unwrap();
        assert_eq!(receipt.matched, vec![sub.id()]);
    }

    #[test]
    fn tombstoned_base_subscription_stops_matching_immediately() {
        let s = schema();
        // max_overlay: 0 compiles both subscriptions into the base, so
        // the unsubscribe below takes the tombstone path.
        let broker = Broker::new(
            &s,
            BrokerConfig {
                rebuild: RebuildPolicy {
                    max_overlay: 0,
                    ..RebuildPolicy::default()
                },
                ..BrokerConfig::default()
            },
        )
        .unwrap();
        let hot = broker
            .subscribe(|b| b.predicate("temperature", Predicate::ge(35)))
            .unwrap();
        let humid = broker
            .subscribe(|b| b.predicate("humidity", Predicate::ge(90)))
            .unwrap();
        broker.unsubscribe(hot.id()).unwrap();
        assert_eq!(broker.subscription_count(), 1);
        let receipt = broker.publish(&event(&s, 40, 95)).unwrap();
        assert_eq!(receipt.matched, vec![humid.id()]);
        assert!(hot.try_recv().is_none(), "tombstoned sub gets nothing");
        assert!(humid.try_recv().is_some());
    }

    #[test]
    fn publish_rejects_ill_typed_events() {
        let s = schema();
        let broker = Broker::new(&s, BrokerConfig::default()).unwrap();
        let other = Schema::builder()
            .attribute("temperature", Domain::int(-1000, 1000))
            .unwrap()
            .attribute("humidity", Domain::int(0, 100))
            .unwrap()
            .build();
        let bad = Event::builder(&other)
            .value("temperature", 500)
            .unwrap()
            .build();
        assert!(broker.publish(&bad).is_err());
    }

    #[test]
    fn concurrent_publish_and_subscribe() {
        use std::sync::Arc;
        let s = schema();
        let broker = Arc::new(Broker::new(&s, BrokerConfig::default()).unwrap());
        let subs: Vec<_> = (0..4)
            .map(|k| {
                broker
                    .subscribe(move |b| b.predicate("temperature", Predicate::ge(k * 10)))
                    .unwrap()
            })
            .collect();
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let broker = Arc::clone(&broker);
            let sc = s.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..50i64 {
                    let temp = ((t * 13 + k * 7) % 80) - 30;
                    broker.publish(&event(&sc, temp, 0)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let m = broker.metrics();
        assert_eq!(m.events_published, 200);
        let received: usize = subs.iter().map(|s| s.drain().len()).sum();
        assert_eq!(received as u64, m.notifications_sent);
    }
}
