use std::fmt;

use serde::{Deserialize, Serialize};

/// Stable identifier of a subscription, independent of the dense profile
/// ids the filter re-assigns when the subscription set changes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SubscriptionId(u64);

impl SubscriptionId {
    /// Creates an id from a raw value.
    #[must_use]
    pub fn new(raw: u64) -> Self {
        SubscriptionId(raw)
    }

    /// The raw value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let id = SubscriptionId::new(42);
        assert_eq!(id.get(), 42);
        assert_eq!(id.to_string(), "s42");
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "42");
    }
}
