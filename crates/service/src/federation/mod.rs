//! Fault-tolerant broker federation.
//!
//! Connects brokers into a full mesh in the style the paper sketches
//! for distributed event notification services (and SIENA/REBECA
//! realise at scale): *subscriptions travel to where events are
//! published; matching events travel back*. Each broker forwards its
//! local subscriptions' profiles to every peer; each peer keeps a
//! per-origin **interest filter** — compiled with the same filter
//! tree the local matching engine uses — and forwards an event to a
//! peer only when that peer's interest matches. Forwarded events are
//! published at the receiving broker as ordinary events, notifying
//! its local subscribers.
//!
//! Loop freedom is structural: a broker only ever forwards events its
//! *own* application published ([`Federation::publish`] /
//! [`Federation::publish_batch`]); events that arrived from a peer
//! are injected straight into the local [`Broker`] and never
//! re-forwarded. In a full mesh every broker hears every matched
//! event exactly once.
//!
//! Everything rides on the private `link::PeerLink`'s reliability
//! machinery — sequence numbers, cumulative acks, Go-Back-N
//! retransmission, capped-exponential reconnect backoff,
//! heartbeats — over any
//! [`transport::Transport`]: real TCP ([`transport::TcpTransport`])
//! or the seeded fault-injection network ([`sim::SimNet`]) the
//! robustness suite uses to replay drop/delay/duplicate/reorder/
//! partition/torn-write schedules deterministically.
//!
//! The federation is *pump-driven*: nothing happens between calls to
//! [`Federation::pump`], which the embedding process calls on its own
//! cadence with its own clock. That keeps the whole subsystem free of
//! threads and wall-clock reads, which is what makes crash/partition
//! tests reproducible.
//!
//! ## Durability contract
//!
//! [`PumpReport::floors`] exposes, after every pump, the highest
//! contiguous sequence received from each peer. A process that
//! persists those floors (alongside whatever it did with the
//! delivered events) and passes them back through
//! [`Federation::add_peer`] on restart gets exactly-once delivery
//! across its own crashes: the link's lazy ack guarantees a peer
//! never forgets traffic before the floor covering it could be
//! persisted, and the restored floor deduplicates the overlap that
//! at-least-once retransmission then redelivers.

pub mod link;
pub mod sim;
pub mod transport;
mod wire;

use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ens_filter::{FilterSnapshot, SnapshotScratch, TreeConfig};
use ens_types::{Event, IndexedEvent, Profile, ProfileSet, Schema};

use crate::broker::{Broker, PublishReceipt};
use crate::error::ServiceError;
use crate::notify::Subscriber;
use crate::subscription::SubscriptionId;

use link::{LinkConfig, LinkEvent, LinkStats, PeerLink};
use transport::{AdoptSlot, AdoptState, TcpTransport, Transport};
pub use wire::schema_hash;
use wire::Msg;

/// Federation identity and link tuning for one broker process.
#[derive(Debug, Clone, Copy)]
pub struct FederationConfig {
    /// This broker's node id — unique across the federation. TCP
    /// glare avoidance keys off it: the lower id dials, the higher
    /// one accepts.
    pub node: u64,
    /// Process incarnation, announced in greetings. Bump it on
    /// restart so surviving peers re-forward their interest state.
    pub epoch: u64,
    /// Per-peer link tuning.
    pub link: LinkConfig,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            node: 0,
            epoch: 1,
            link: LinkConfig::default(),
        }
    }
}

/// One event delivered from a peer during a pump.
#[derive(Debug, Clone)]
pub struct RemoteDelivery {
    /// Originating peer node id.
    pub peer: u64,
    /// The event's sequence on that peer's link (monotone per peer).
    pub seq: u64,
    /// The reconstructed event, already published to the local
    /// broker.
    pub event: Arc<Event>,
}

/// What one [`Federation::pump`] call accomplished.
#[derive(Debug, Default)]
pub struct PumpReport {
    /// Events delivered from peers, in link order per peer.
    pub delivered: Vec<RemoteDelivery>,
    /// Per-peer receive floors (highest contiguous sequence seen) as
    /// of the end of this pump. Persist these before the next pump
    /// for exactly-once restarts.
    pub floors: Vec<(u64, u64)>,
    /// Peers whose link completed a greeting this pump, with whether
    /// the peer's epoch changed since the previous connection.
    pub established: Vec<(u64, bool)>,
    /// Peers refused because they run a different schema.
    pub schema_mismatch: Vec<u64>,
}

/// Aggregated federation counters (sums over all peer links).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationMetrics {
    /// Sequenced messages first-sent across all links.
    pub sent: u64,
    /// Go-Back-N retransmissions.
    pub retransmits: u64,
    /// Sequence numbers lost to pending-buffer overflow policies.
    pub overflow_dropped: u64,
    /// Inbound duplicates absorbed by receive floors.
    pub duplicates: u64,
    /// Inbound messages dropped for leaving a sequence gap.
    pub gap_drops: u64,
    /// Connection resets across all links.
    pub resets: u64,
    /// Messages abandoned as unencodable.
    pub unencodable: u64,
    /// Rows forwarded to peers (matched events, counted per peer).
    pub forwarded_rows: u64,
    /// Rows received from peers and published locally.
    pub delivered_rows: u64,
    /// Rows from peers that failed validation (corrupt indices or
    /// width) and were discarded.
    pub rejected_rows: u64,
    /// Rows from peers that decoded fine but whose local publish
    /// failed (e.g. a durable broker's checkpoint IO error). They are
    /// counted — never silently absorbed — because the link has
    /// already advanced past them, so they will not be redelivered.
    pub publish_failures: u64,
    /// Peer links currently up.
    pub peers_up: usize,
    /// Peer links permanently failed (schema mismatch or
    /// overflow-disconnect).
    pub peers_failed: usize,
}

/// One forwarded subscription in a peer's interest set, tagged with
/// the peer incarnation that forwarded it.
struct InterestEntry {
    epoch: u64,
    #[allow(dead_code)] // forwarded for future weighted routing
    weight: f64,
    profile: Profile,
}

/// A peer's forwarded subscriptions, compiled into a filter the
/// forwarding hot path can match one [`IndexedEvent`] against.
///
/// Interest survives the peer's restarts *conservatively*: entries
/// from an older incarnation are kept — over-forwarding wastes
/// bandwidth but loses nothing — until the first subscription from
/// the new incarnation arrives, which prunes everything older in the
/// same state-lock critical section (so no publish can slip through
/// a half-replaced interest set).
#[derive(Default)]
struct PeerInterest {
    subs: HashMap<u64, InterestEntry>,
    snapshot: Option<FilterSnapshot>,
}

impl PeerInterest {
    fn recompile(&mut self, schema: &Schema) -> Result<(), ServiceError> {
        if self.subs.is_empty() {
            self.snapshot = None;
            return Ok(());
        }
        let mut set = ProfileSet::new(schema);
        // Deterministic insert order (subscription id) so compiled
        // trees are reproducible run to run.
        let mut ids: Vec<u64> = self.subs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            set.insert(self.subs[&id].profile.clone());
        }
        self.snapshot = Some(FilterSnapshot::compile(&set, &TreeConfig::default())?);
        Ok(())
    }
}

/// An accepted TCP connection whose first frame (the identifying
/// `Hello`) has not fully arrived yet.
struct PendingAccept {
    stream: TcpStream,
    buf: Vec<u8>,
    deadline: Instant,
}

/// Mutable federation state, behind one mutex (the pump is the only
/// hot path and publishes only enqueue).
struct FedState {
    links: Vec<PeerLink>,
    interest: HashMap<u64, PeerInterest>,
    /// Local subscriptions forwarded to peers: id → (weight, profile).
    local_subs: HashMap<u64, (f64, Profile)>,
    epoch: u64,
    scratch: SnapshotScratch,
    ix_scratch: IndexedEvent,
    listener: Option<TcpListener>,
    pending_accepts: Vec<PendingAccept>,
    /// Passive-side adoption slots, by peer node id.
    slots: HashMap<u64, AdoptSlot>,
    delivered_rows: u64,
    rejected_rows: u64,
    forwarded_rows: u64,
    publish_failures: u64,
}

/// A federated broker endpoint: wraps an [`Broker`] (shared, so the
/// application keeps using it directly for purely local work) and
/// manages the peer links.
pub struct Federation {
    broker: Arc<Broker>,
    schema: Arc<Schema>,
    node: u64,
    link_config: LinkConfig,
    state: Mutex<FedState>,
}

impl Federation {
    /// Wraps `broker` as a federation endpoint. No I/O happens until
    /// peers are added and [`Federation::pump`] runs.
    #[must_use]
    pub fn new(broker: Arc<Broker>, config: FederationConfig) -> Self {
        let schema = broker.schema_shared();
        Federation {
            broker,
            schema,
            node: config.node,
            link_config: config.link,
            state: Mutex::new(FedState {
                links: Vec::new(),
                interest: HashMap::new(),
                local_subs: HashMap::new(),
                epoch: config.epoch,
                scratch: SnapshotScratch::new(),
                ix_scratch: IndexedEvent::new(),
                listener: None,
                pending_accepts: Vec::new(),
                slots: HashMap::new(),
                delivered_rows: 0,
                rejected_rows: 0,
                forwarded_rows: 0,
                publish_failures: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The wrapped broker.
    #[must_use]
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// This endpoint's node id.
    #[must_use]
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Adds a peer over an explicit transport (tests use the
    /// fault-injection network here). `recv_floor` is the persisted
    /// receive floor from a previous incarnation, 0 for a fresh pairing.
    pub fn add_peer(&self, peer: u64, transport: Box<dyn Transport>, recv_floor: u64) {
        let mut st = self.lock();
        let mut link = PeerLink::new(
            self.node,
            peer,
            Arc::clone(&self.schema),
            st.epoch,
            recv_floor,
            transport,
            self.link_config,
        );
        // Forward the subscriptions that already exist; later ones
        // are forwarded as they arrive.
        let mut ids: Vec<u64> = st.local_subs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let (weight, profile) = st.local_subs[&id].clone();
            link.enqueue(Msg::Subscribe {
                seq: 0,
                id,
                weight,
                profile,
            });
        }
        st.links.retain(|l| l.peer() != peer);
        st.links.push(link);
    }

    /// Adds a TCP peer. The side with the lower node id dials `addr`;
    /// the higher side waits for the peer to dial in through this
    /// endpoint's [`Federation::bind`] listener.
    pub fn add_tcp_peer(&self, peer: u64, addr: SocketAddr, recv_floor: u64) {
        let transport: Box<dyn Transport> = if self.node < peer {
            Box::new(TcpTransport::dial(addr))
        } else {
            let slot: AdoptSlot = Arc::new(Mutex::new(AdoptState::default()));
            self.lock().slots.insert(peer, Arc::clone(&slot));
            Box::new(TcpTransport::passive(slot))
        };
        self.add_peer(peer, transport, recv_floor);
    }

    /// Starts listening for inbound federation connections. Returns
    /// the bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(&self, addr: SocketAddr) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        self.lock().listener = Some(listener);
        Ok(bound)
    }

    /// Registers a weighted subscription locally and forwards its
    /// profile to every peer, so remote events matching it reach this
    /// broker.
    ///
    /// # Errors
    ///
    /// Propagates local subscription errors; forwarding is
    /// best-effort (bounded by the links' overflow policies).
    pub fn subscribe_profile_weighted(
        &self,
        profile: Profile,
        weight: f64,
    ) -> Result<Subscriber, ServiceError> {
        let sub = self
            .broker
            .subscribe_profile_weighted(profile.clone(), weight)?;
        let id = sub.id().get();
        let mut st = self.lock();
        st.local_subs.insert(id, (weight, profile.clone()));
        for link in &mut st.links {
            link.enqueue(Msg::Subscribe {
                seq: 0,
                id,
                weight,
                profile: profile.clone(),
            });
        }
        Ok(sub)
    }

    /// [`Federation::subscribe_profile_weighted`] with weight 1.
    ///
    /// # Errors
    ///
    /// Propagates local subscription errors.
    pub fn subscribe_profile(&self, profile: Profile) -> Result<Subscriber, ServiceError> {
        self.subscribe_profile_weighted(profile, 1.0)
    }

    /// Parses a profile expression and subscribes (see
    /// [`Broker::subscribe_parsed`] for the syntax).
    ///
    /// # Errors
    ///
    /// Propagates parse and subscription errors.
    pub fn subscribe_parsed(&self, text: &str) -> Result<Subscriber, ServiceError> {
        let profile =
            ens_types::parse::parse_profile(&self.schema, text, ens_types::ProfileId::new(0))
                .map_err(ServiceError::Types)?;
        self.subscribe_profile(profile)
    }

    /// Cancels a subscription locally and retracts it from peers.
    ///
    /// # Errors
    ///
    /// Propagates [`Broker::unsubscribe`] errors.
    pub fn unsubscribe(&self, id: SubscriptionId) -> Result<(), ServiceError> {
        self.broker.unsubscribe(id)?;
        let mut st = self.lock();
        if st.local_subs.remove(&id.get()).is_some() {
            for link in &mut st.links {
                link.enqueue(Msg::Unsubscribe {
                    seq: 0,
                    id: id.get(),
                });
            }
        }
        Ok(())
    }

    /// Publishes a locally originated event: local subscribers are
    /// notified through the broker, and the event is forwarded to
    /// every peer whose interest filter matches it.
    ///
    /// # Errors
    ///
    /// Propagates local publish errors.
    pub fn publish(&self, event: &Event) -> Result<PublishReceipt, ServiceError> {
        let receipt = self.broker.publish(event)?;
        self.forward(std::slice::from_ref(event))?;
        Ok(receipt)
    }

    /// Publishes a locally originated batch (block matching locally,
    /// one forwarded `Batch` frame per interested peer).
    ///
    /// # Errors
    ///
    /// Propagates local publish errors.
    pub fn publish_batch(
        &self,
        events: &[Arc<Event>],
    ) -> Result<Vec<PublishReceipt>, ServiceError> {
        let receipts = self.broker.publish_batch(events)?;
        let plain: Vec<&Event> = events.iter().map(Arc::as_ref).collect();
        self.forward_refs(&plain)?;
        Ok(receipts)
    }

    fn forward(&self, events: &[Event]) -> Result<(), ServiceError> {
        let refs: Vec<&Event> = events.iter().collect();
        self.forward_refs(&refs)
    }

    /// Matches each event against every peer's interest filter and
    /// enqueues one `Batch` per interested peer. Events arriving from
    /// peers never pass through here — that is the loop guard.
    fn forward_refs(&self, events: &[&Event]) -> Result<(), ServiceError> {
        let st = &mut *self.lock();
        if st.links.is_empty() {
            return Ok(());
        }
        let width = self.schema.len() as u32;
        let mut per_peer: HashMap<u64, Vec<Vec<u64>>> = HashMap::new();
        for event in events {
            st.ix_scratch
                .resolve_into(&self.schema, event)
                .map_err(ServiceError::Types)?;
            for link in &st.links {
                let peer = link.peer();
                let Some(interest) = st.interest.get(&peer) else {
                    continue;
                };
                let Some(snapshot) = interest.snapshot.as_ref() else {
                    continue;
                };
                snapshot.match_into(&st.ix_scratch, &mut st.scratch, false);
                if st.scratch.is_match() {
                    per_peer
                        .entry(peer)
                        .or_default()
                        .push(st.ix_scratch.raw().to_vec());
                }
            }
        }
        for link in &mut st.links {
            if let Some(rows) = per_peer.remove(&link.peer()) {
                st.forwarded_rows += rows.len() as u64;
                link.enqueue(Msg::Batch {
                    first_seq: 0,
                    width,
                    rows,
                });
            }
        }
        Ok(())
    }

    /// Accepts pending inbound TCP connections and routes each to its
    /// peer's adoption slot once the identifying `Hello` arrives.
    fn poll_accepts(&self, st: &mut FedState) {
        if let Some(listener) = st.listener.as_ref() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_ok() {
                            st.pending_accepts.push(PendingAccept {
                                stream,
                                buf: Vec::new(),
                                deadline: Instant::now() + Duration::from_secs(2),
                            });
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        let mut i = 0;
        while i < st.pending_accepts.len() {
            enum Verdict {
                Keep,
                Drop,
                Adopt(u64),
            }
            let pa = &mut st.pending_accepts[i];
            let mut verdict = Verdict::Keep;
            let mut chunk = [0u8; 4096];
            loop {
                match pa.stream.read(&mut chunk) {
                    Ok(0) => {
                        verdict = Verdict::Drop;
                        break;
                    }
                    Ok(n) => pa.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        verdict = Verdict::Drop;
                        break;
                    }
                }
            }
            if matches!(verdict, Verdict::Keep) {
                match identify_hello(&pa.buf, &self.schema) {
                    Ok(Some(node)) => verdict = Verdict::Adopt(node),
                    Ok(None) => {
                        if Instant::now() >= pa.deadline {
                            verdict = Verdict::Drop;
                        }
                    }
                    Err(()) => verdict = Verdict::Drop,
                }
            }
            match verdict {
                Verdict::Keep => i += 1,
                Verdict::Drop => {
                    st.pending_accepts.swap_remove(i);
                }
                Verdict::Adopt(node) => {
                    let pa = st.pending_accepts.swap_remove(i);
                    if let Some(slot) = st.slots.get(&node) {
                        let mut s = slot.lock().unwrap_or_else(|e| e.into_inner());
                        // Hand over the stream plus everything read,
                        // *including* the Hello frame, so the link
                        // observes the greeting normally.
                        s.stream = Some(pa.stream);
                        s.preread = pa.buf;
                    }
                }
            }
        }
    }

    /// Drives all peer links once: accepts inbound connections,
    /// reconnects, exchanges traffic, republishes remote events
    /// locally, and reports deliveries and receive floors.
    ///
    /// Call this in a loop with a monotone clock; the federation does
    /// nothing between pumps.
    ///
    /// # Errors
    ///
    /// Propagates interest-filter compilation errors for forwarded
    /// subscriptions. Local publish failures for remote events are
    /// *not* propagated — the link has already advanced past those
    /// rows, so aborting would silently drop the rest of the batch;
    /// they are counted in [`FederationMetrics::publish_failures`]
    /// instead.
    pub fn pump(&self, now_ms: u64) -> Result<PumpReport, ServiceError> {
        let mut report = PumpReport::default();
        let st = &mut *self.lock();
        self.poll_accepts(st);
        let mut events = Vec::new();
        for link in &mut st.links {
            link.poll(now_ms, &mut events);
        }
        for ev in events {
            match ev {
                LinkEvent::Established {
                    peer,
                    epoch_changed,
                } => {
                    if epoch_changed {
                        // The peer restarted: our previously forwarded
                        // subscriptions died with it. Re-offer all of
                        // them (its receive floor dedupes any that
                        // survived in flight).
                        let mut ids: Vec<u64> = st.local_subs.keys().copied().collect();
                        ids.sort_unstable();
                        let resend: Vec<Msg> = ids
                            .iter()
                            .map(|id| {
                                let (weight, profile) = st.local_subs[id].clone();
                                Msg::Subscribe {
                                    seq: 0,
                                    id: *id,
                                    weight,
                                    profile,
                                }
                            })
                            .collect();
                        if let Some(link) = st.links.iter_mut().find(|l| l.peer() == peer) {
                            for msg in resend {
                                link.enqueue(msg);
                            }
                        }
                        // The peer's forwarded interest is *kept*: the
                        // new incarnation's first Subscribe prunes it
                        // (see [`PeerInterest`]). Clearing it here
                        // would open an under-forwarding window — loss
                        // — between this greeting and that Subscribe.
                    }
                    report.established.push((peer, epoch_changed));
                }
                LinkEvent::SchemaMismatch { peer, .. } => {
                    report.schema_mismatch.push(peer);
                }
                LinkEvent::Subscribe {
                    peer,
                    id,
                    weight,
                    profile,
                    epoch,
                } => {
                    let interest = st.interest.entry(peer).or_default();
                    // First word from a newer incarnation retires
                    // everything inherited from older ones.
                    interest.subs.retain(|_, e| e.epoch >= epoch);
                    interest.subs.insert(
                        id,
                        InterestEntry {
                            epoch,
                            weight,
                            profile,
                        },
                    );
                    interest.recompile(&self.schema)?;
                }
                LinkEvent::Unsubscribe { peer, id } => {
                    if let Some(interest) = st.interest.get_mut(&peer) {
                        interest.subs.remove(&id);
                        interest.recompile(&self.schema)?;
                    }
                }
                LinkEvent::Rows {
                    peer,
                    first_seq,
                    rows,
                    skip,
                } => {
                    for (offset, row) in rows.iter().enumerate().skip(skip) {
                        if row.len() != self.schema.len() {
                            st.rejected_rows += 1;
                            continue;
                        }
                        st.ix_scratch.copy_from_raw(row);
                        let event = match st.ix_scratch.to_event(&self.schema) {
                            Ok(e) => Arc::new(e),
                            Err(_) => {
                                st.rejected_rows += 1;
                                continue;
                            }
                        };
                        // Local publish only — remote events are never
                        // re-forwarded, which is the mesh's loop guard.
                        //
                        // A publish failure must NOT abort the pump:
                        // the link already advanced its floor past
                        // this whole batch, so the next lazy ack will
                        // tell the sender to forget these rows either
                        // way. Bailing out here would additionally
                        // drop the batch's remaining rows and every
                        // later link event on the floor. Count the
                        // failure and keep going.
                        if self.broker.publish_shared(Arc::clone(&event)).is_err() {
                            st.publish_failures += 1;
                            continue;
                        }
                        st.delivered_rows += 1;
                        report.delivered.push(RemoteDelivery {
                            peer,
                            seq: first_seq + offset as u64,
                            event,
                        });
                    }
                }
                LinkEvent::Down { .. } => {}
            }
        }
        report.floors = st.links.iter().map(|l| (l.peer(), l.recv_high())).collect();
        Ok(report)
    }

    /// Number of peers whose forwarded interest currently compiles to
    /// a live filter — i.e. peers that would receive matching events
    /// published here. Publishers that must not race the initial
    /// subscription exchange can gate on this.
    #[must_use]
    pub fn interested_peers(&self) -> usize {
        self.lock()
            .interest
            .values()
            .filter(|i| i.snapshot.is_some())
            .count()
    }

    /// Per-peer receive floors (highest contiguous sequence received),
    /// the state to persist for exactly-once restarts.
    #[must_use]
    pub fn recv_floors(&self) -> Vec<(u64, u64)> {
        self.lock()
            .links
            .iter()
            .map(|l| (l.peer(), l.recv_high()))
            .collect()
    }

    /// Outbound messages queued or awaiting acknowledgement across
    /// all links — 0 means every forwarded event has been confirmed
    /// received (useful for draining before shutdown).
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.lock().links.iter().map(PeerLink::backlog).sum()
    }

    /// Updates the announced epoch (affects future greetings).
    pub fn set_epoch(&self, epoch: u64) {
        let mut st = self.lock();
        st.epoch = epoch;
        for link in &mut st.links {
            link.set_epoch(epoch);
        }
    }

    /// Aggregated counters across all peer links.
    #[must_use]
    pub fn metrics(&self) -> FederationMetrics {
        let st = self.lock();
        let mut m = FederationMetrics {
            delivered_rows: st.delivered_rows,
            rejected_rows: st.rejected_rows,
            forwarded_rows: st.forwarded_rows,
            publish_failures: st.publish_failures,
            ..FederationMetrics::default()
        };
        for link in &st.links {
            let s: LinkStats = link.stats();
            m.sent += s.sent;
            m.retransmits += s.retransmits;
            m.overflow_dropped += s.overflow_dropped;
            m.duplicates += s.duplicates;
            m.gap_drops += s.gap_drops;
            m.resets += s.resets;
            m.unencodable += s.unencodable;
            m.peers_up += usize::from(link.is_up());
            m.peers_failed += usize::from(link.is_failed());
        }
        m
    }
}

/// Tries to parse the first complete frame of an accepted connection
/// as a `Hello`, returning the announcing node id. `Ok(None)` means
/// incomplete; `Err` means the stream is not a federation greeting.
fn identify_hello(buf: &[u8], schema: &Schema) -> Result<Option<u64>, ()> {
    if buf.len() < wire::FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len > wire::MAX_FRAME {
        return Err(());
    }
    if buf.len() < wire::FRAME_HEADER + len {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let payload = &buf[wire::FRAME_HEADER..wire::FRAME_HEADER + len];
    if ens_filter::persist::crc32(payload) != crc {
        return Err(());
    }
    match Msg::decode(payload, schema) {
        Ok(Msg::Hello { node, .. }) => Ok(Some(node)),
        _ => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use ens_types::{Domain, Predicate};
    use sim::SimNet;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("x", Domain::int(0, 999))
            .unwrap()
            .build()
    }

    fn fed(net: &SimNet, node: u64, peers: &[u64]) -> Federation {
        let broker = Arc::new(Broker::new(&schema(), BrokerConfig::default()).unwrap());
        let f = Federation::new(
            broker,
            FederationConfig {
                node,
                epoch: 1,
                link: link::LinkConfig {
                    heartbeat_ms: 50,
                    timeout_ms: 300,
                    backoff_base_ms: 20,
                    backoff_max_ms: 200,
                    rto_ms: 40,
                    send_window: 16,
                    pending_cap: 0,
                    overflow: crate::channel::OverflowPolicy::DropOldest,
                },
            },
        );
        for &p in peers {
            f.add_peer(p, Box::new(net.transport(node, p)), 0);
        }
        f
    }

    fn pump_all(net: &SimNet, feds: &[&Federation], steps: u32) -> Vec<RemoteDelivery> {
        let mut delivered = Vec::new();
        for _ in 0..steps {
            let now = net.now_ms();
            for f in feds {
                delivered.extend(f.pump(now).unwrap().delivered);
            }
            net.advance(10);
        }
        delivered
    }

    fn event(s: &Schema, x: i64) -> Event {
        Event::builder(s).value("x", x).unwrap().build()
    }

    #[test]
    fn subscriptions_route_events_across_the_mesh() {
        let net = SimNet::new(1);
        let a = fed(&net, 1, &[2]);
        let b = fed(&net, 2, &[1]);
        // b wants x >= 500; a publishes 400 (no) and 600 (yes).
        let sub = b
            .subscribe_profile(
                Profile::builder(b.broker().schema())
                    .predicate("x", Predicate::ge(500))
                    .unwrap()
                    .build(ens_types::ProfileId::new(0)),
            )
            .unwrap();
        pump_all(&net, &[&a, &b], 5);
        let s = schema();
        a.publish(&event(&s, 400)).unwrap();
        a.publish(&event(&s, 600)).unwrap();
        let delivered = pump_all(&net, &[&a, &b], 10);
        // Only b receives, and only the matching event.
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].peer, 1);
        // The remote event notified b's local subscriber.
        let n = sub.try_recv().expect("notification should be queued");
        assert_eq!(
            n.event.value(b.broker().schema().attr("x").unwrap()),
            Some(&ens_types::Value::Int(600))
        );
        // a forwarded exactly one row.
        assert_eq!(a.metrics().forwarded_rows, 1);
        assert_eq!(b.metrics().delivered_rows, 1);
    }

    #[test]
    fn unsubscribe_stops_forwarding() {
        let net = SimNet::new(2);
        let a = fed(&net, 1, &[2]);
        let b = fed(&net, 2, &[1]);
        let sub = b.subscribe_parsed("profile(x >= 0)").unwrap();
        pump_all(&net, &[&a, &b], 5);
        let s = schema();
        a.publish(&event(&s, 1)).unwrap();
        assert_eq!(pump_all(&net, &[&a, &b], 10).len(), 1);
        b.unsubscribe(sub.id()).unwrap();
        pump_all(&net, &[&a, &b], 10);
        a.publish(&event(&s, 2)).unwrap();
        assert_eq!(pump_all(&net, &[&a, &b], 10).len(), 0);
        assert_eq!(a.metrics().forwarded_rows, 1);
    }

    #[test]
    fn remote_events_are_not_reforwarded() {
        // Triangle mesh: c subscribes everywhere; a publishes. c must
        // see the event exactly once (from a), not re-forwarded via b.
        let net = SimNet::new(3);
        let a = fed(&net, 1, &[2, 3]);
        let b = fed(&net, 2, &[1, 3]);
        let c = fed(&net, 3, &[1, 2]);
        let _sub_b = b.subscribe_parsed("profile(x >= 0)").unwrap();
        let _sub_c = c.subscribe_parsed("profile(x >= 0)").unwrap();
        pump_all(&net, &[&a, &b, &c], 6);
        let s = schema();
        a.publish(&event(&s, 7)).unwrap();
        let delivered = pump_all(&net, &[&a, &b, &c], 12);
        // b and c each get it exactly once, both from node 1.
        assert_eq!(delivered.len(), 2);
        assert!(delivered.iter().all(|d| d.peer == 1));
    }
}
