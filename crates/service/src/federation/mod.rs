//! Fault-tolerant broker federation.
//!
//! Connects brokers into a full mesh in the style the paper sketches
//! for distributed event notification services (and SIENA/REBECA
//! realise at scale): *subscriptions travel to where events are
//! published; matching events travel back*. Each broker forwards its
//! local subscriptions' profiles to every peer; each peer keeps a
//! per-origin **interest filter** — compiled with the same filter
//! tree the local matching engine uses — and forwards an event to a
//! peer only when that peer's interest matches. Forwarded events are
//! published at the receiving broker as ordinary events, notifying
//! its local subscribers.
//!
//! ## Routing efficiency
//!
//! Two mechanisms keep the network as selective as the matcher:
//!
//! * **Covering-based interest aggregation**
//!   ([`FederationConfig::aggregate_interest`], on by default): each
//!   link carries a [`ens_types::CoverSet`]-backed ledger of every
//!   interest contribution bound for that peer, and only the minimal
//!   covering antichain is actually forwarded — a subscription covered
//!   by an already-forwarded representative costs zero wire traffic,
//!   and retracting a representative promotes its covered children
//!   (subscribes are enqueued before unsubscribes so the transition
//!   can only over-forward, never lose). Forwarded entries are keyed
//!   by the profile's canonical lowered signature, so re-learning the
//!   same interest through another path converges instead of echoing.
//!
//! * **Multi-hop forwarding** ([`FederationConfig::max_hops`], 0 by
//!   default): with a hop budget, remote interest is re-forwarded to
//!   other peers and remote event rows are routed onward along the
//!   overlay. Loop freedom then comes from per-origin routing state
//!   instead of structure: every locally published row is stamped
//!   with its origin broker id and a per-origin sequence, receivers
//!   keep a highest-seen floor per origin (exact on acyclic
//!   topologies, because links are FIFO-exactly-once and transit
//!   forwarding preserves order), rows are never forwarded back to
//!   the link they arrived on or to their origin, and the TTL bounds
//!   any residual path. Line/star/tree overlays get exactly-once,
//!   per-origin-ordered delivery without a full mesh.
//!
//! With `max_hops == 0` loop freedom is structural, as before: a
//! broker only ever forwards events its *own* application published
//! ([`Federation::publish`] / [`Federation::publish_batch`]); events
//! that arrived from a peer are injected straight into the local
//! [`Broker`] and never re-forwarded. In a full mesh every broker
//! hears every matched event exactly once. Multi-hop mode requires
//! the origin sequence state to be as durable as the link floors —
//! see [`Federation::origin_floors`] / [`Federation::set_origin_floor`]
//! and [`Federation::set_last_origin_seq`].
//!
//! Everything rides on the private `link::PeerLink`'s reliability
//! machinery — sequence numbers, cumulative acks, Go-Back-N
//! retransmission, capped-exponential reconnect backoff,
//! heartbeats — over any
//! [`transport::Transport`]: real TCP ([`transport::TcpTransport`])
//! or the seeded fault-injection network ([`sim::SimNet`]) the
//! robustness suite uses to replay drop/delay/duplicate/reorder/
//! partition/torn-write schedules deterministically.
//!
//! The federation is *pump-driven*: nothing happens between calls to
//! [`Federation::pump`], which the embedding process calls on its own
//! cadence with its own clock. That keeps the whole subsystem free of
//! threads and wall-clock reads, which is what makes crash/partition
//! tests reproducible.
//!
//! ## Durability contract
//!
//! [`PumpReport::floors`] exposes, after every pump, the highest
//! contiguous sequence received from each peer. A process that
//! persists those floors (alongside whatever it did with the
//! delivered events) and passes them back through
//! [`Federation::add_peer`] on restart gets exactly-once delivery
//! across its own crashes: the link's lazy ack guarantees a peer
//! never forgets traffic before the floor covering it could be
//! persisted, and the restored floor deduplicates the overlap that
//! at-least-once retransmission then redelivers.

pub mod link;
pub mod sim;
pub mod transport;
mod wire;

use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ens_filter::{FilterSnapshot, SnapshotScratch, TreeConfig};
use ens_types::{
    profile_signature, CoverOutcome, CoverSet, Event, IndexedBatch, IndexedEvent, Profile,
    ProfileSet, Schema,
};

use crate::broker::{Broker, PublishReceipt};
use crate::error::ServiceError;
use crate::notify::Subscriber;
use crate::subscription::SubscriptionId;

use link::{LinkConfig, LinkEvent, LinkStats, PeerLink};
use transport::{AdoptSlot, AdoptState, TcpTransport, Transport};
pub use wire::schema_hash;
use wire::Msg;

/// Federation identity and link tuning for one broker process.
#[derive(Debug, Clone, Copy)]
pub struct FederationConfig {
    /// This broker's node id — unique across the federation. TCP
    /// glare avoidance keys off it: the lower id dials, the higher
    /// one accepts.
    pub node: u64,
    /// Process incarnation, announced in greetings. Bump it on
    /// restart so surviving peers re-forward their interest state.
    pub epoch: u64,
    /// Forward only the minimal covering antichain of interest per
    /// peer (on by default). Off forwards every distinct interest
    /// profile individually — the baseline the BENCH aggregation
    /// rows compare against.
    pub aggregate_interest: bool,
    /// Hop budget for re-forwarding remote event rows and remote
    /// interest. 0 (the default) is classic single-hop full-mesh
    /// federation: remote rows are never re-forwarded. A positive
    /// budget enables multi-hop routing over acyclic overlays
    /// (line/star/tree); see the module docs for the durability
    /// contract it adds.
    pub max_hops: u8,
    /// Per-peer link tuning.
    pub link: LinkConfig,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            node: 0,
            epoch: 1,
            aggregate_interest: true,
            max_hops: 0,
            link: LinkConfig::default(),
        }
    }
}

/// One event delivered from a peer during a pump.
#[derive(Debug, Clone)]
pub struct RemoteDelivery {
    /// The directly connected peer the row arrived from (the last
    /// hop, not necessarily the publisher).
    pub peer: u64,
    /// The event's sequence on that peer's link (monotone per peer).
    pub seq: u64,
    /// The broker that originally published the event.
    pub origin: u64,
    /// The event's position in the origin's publish order (monotone
    /// per origin; gaps mean interest filtering along the path).
    pub origin_seq: u64,
    /// The reconstructed event, already published to the local
    /// broker.
    pub event: Arc<Event>,
}

/// What one [`Federation::pump`] call accomplished.
#[derive(Debug, Default)]
pub struct PumpReport {
    /// Events delivered from peers, in link order per peer.
    pub delivered: Vec<RemoteDelivery>,
    /// Per-peer receive floors (highest contiguous sequence seen) as
    /// of the end of this pump. Persist these before the next pump
    /// for exactly-once restarts.
    pub floors: Vec<(u64, u64)>,
    /// Peers whose link completed a greeting this pump, with whether
    /// the peer's epoch changed since the previous connection.
    pub established: Vec<(u64, bool)>,
    /// Peers refused because they run a different schema.
    pub schema_mismatch: Vec<u64>,
}

/// Aggregated federation counters (sums over all peer links).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationMetrics {
    /// Sequenced messages first-sent across all links.
    pub sent: u64,
    /// Go-Back-N retransmissions.
    pub retransmits: u64,
    /// Sequence numbers lost to pending-buffer overflow policies.
    pub overflow_dropped: u64,
    /// Inbound duplicates absorbed by receive floors.
    pub duplicates: u64,
    /// Inbound messages dropped for leaving a sequence gap.
    pub gap_drops: u64,
    /// Connection resets across all links.
    pub resets: u64,
    /// Messages abandoned as unencodable.
    pub unencodable: u64,
    /// Rows forwarded to peers (matched events, counted per peer).
    pub forwarded_rows: u64,
    /// Rows received from peers and published locally.
    pub delivered_rows: u64,
    /// Rows from peers that failed validation (corrupt indices or
    /// width) and were discarded.
    pub rejected_rows: u64,
    /// Rows from peers that decoded fine but whose local publish
    /// failed (e.g. a durable broker's checkpoint IO error). They are
    /// counted — never silently absorbed — because the link has
    /// already advanced past them, so they will not be redelivered.
    pub publish_failures: u64,
    /// Rows suppressed by per-origin routing state: redundant copies
    /// of an origin sequence already seen (or of this broker's own
    /// traffic echoed back), dropped before local publish.
    pub origin_duplicates: u64,
    /// Peer links currently up.
    pub peers_up: usize,
    /// Peer links permanently failed (schema mismatch or
    /// overflow-disconnect).
    pub peers_failed: usize,
}

/// One forwarded subscription in a peer's interest set, tagged with
/// the peer incarnation that forwarded it. Weights deliberately do
/// not cross the wire: they parameterise the *subscribing* broker's
/// local cost model, and routing treats all interest alike.
struct InterestEntry {
    epoch: u64,
    profile: Profile,
}

/// A peer's forwarded subscriptions, compiled into a filter the
/// forwarding hot path can match one [`IndexedEvent`] against.
///
/// Interest survives the peer's restarts *conservatively*: entries
/// from an older incarnation are kept — over-forwarding wastes
/// bandwidth but loses nothing — until the first subscription from
/// the new incarnation arrives, which prunes everything older in the
/// same state-lock critical section (so no publish can slip through
/// a half-replaced interest set).
#[derive(Default)]
struct PeerInterest {
    subs: HashMap<u64, InterestEntry>,
    snapshot: Option<FilterSnapshot>,
}

impl PeerInterest {
    fn recompile(&mut self, schema: &Schema) -> Result<(), ServiceError> {
        if self.subs.is_empty() {
            self.snapshot = None;
            return Ok(());
        }
        let mut set = ProfileSet::new(schema);
        // Deterministic insert order (subscription id) so compiled
        // trees are reproducible run to run.
        let mut ids: Vec<u64> = self.subs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            set.insert(self.subs[&id].profile.clone());
        }
        self.snapshot = Some(FilterSnapshot::compile(&set, &TreeConfig::default())?);
        Ok(())
    }
}

/// Where an outbound interest contribution came from: a local
/// subscription, or (multi-hop mode) interest learned from another
/// peer that this link must carry onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SourceKey {
    Local(u64),
    Remote { peer: u64, id: u64 },
}

/// Wire traffic a ledger mutation requires. Subscribes are applied
/// before unsubscribes, so an antichain transition can only
/// transiently over-forward (harmless — the extra events match no
/// local subscriber) and never under-forward (loss).
#[derive(Debug, Default)]
struct InterestDelta {
    subscribe: Vec<(u64, Profile)>,
    unsubscribe: Vec<u64>,
}

impl InterestDelta {
    fn merge(&mut self, mut other: InterestDelta) {
        self.subscribe.append(&mut other.subscribe);
        self.unsubscribe.append(&mut other.unsubscribe);
    }

    fn apply(self, link: &mut PeerLink) {
        for (id, profile) in self.subscribe {
            link.enqueue(Msg::Subscribe {
                seq: 0,
                id,
                profile,
            });
        }
        for id in self.unsubscribe {
            link.enqueue(Msg::Unsubscribe { seq: 0, id });
        }
    }
}

/// One distinct interest signature bound for a peer.
struct SigEntry {
    /// Dense slot used as the [`CoverSet`] key.
    slot: u32,
    /// How many sources currently contribute this signature.
    refs: u32,
    /// A representative profile carrying the signature.
    profile: Profile,
    /// Whether the profile lowers (participates in covering
    /// analysis); profiles that do not are always forwarded
    /// individually — missing a merge is safe, losing interest is
    /// not.
    lowers: bool,
}

/// The per-link outbound interest ledger: every contribution bound
/// for one peer, reduced to the set of `Subscribe`s actually on the
/// wire.
///
/// Contributions are keyed by their profile's canonical lowered
/// signature, so exact duplicates — including a broker's own interest
/// echoed back around a cycle — are absorbed with zero wire traffic
/// in *any* mode. With aggregation on, a [`CoverSet`] additionally
/// reduces the forwarded set to the minimal covering antichain: a
/// probe landing on `Covered` is the O(1) fast path (record only),
/// and only a new representative (or a representative's departure)
/// pays a full antichain recompute and emits deltas.
struct OutboundInterest {
    aggregate: bool,
    /// Contribution source → the signature it currently carries.
    sources: HashMap<SourceKey, Vec<u8>>,
    /// Signature → its refcounted entry.
    by_sig: HashMap<Vec<u8>, SigEntry>,
    /// Covering state over the lowerable entries, rebuilt on
    /// antichain changes (empty when aggregation is off).
    cover: CoverSet,
    /// Signature → wire id of the `Subscribe` currently forwarded.
    /// Invariant: keys are exactly the antichain representatives plus
    /// every non-lowerable entry (or all entries, aggregation off).
    forwarded: HashMap<Vec<u8>, u64>,
    next_slot: u32,
}

impl OutboundInterest {
    fn new(schema: &Schema, aggregate: bool) -> Self {
        OutboundInterest {
            aggregate,
            sources: HashMap::new(),
            by_sig: HashMap::new(),
            cover: CoverSet::new(schema),
            forwarded: HashMap::new(),
            next_slot: 0,
        }
    }

    /// Signature key for `profile`: `0x01 ++ canonical signature` for
    /// lowerable profiles, a unique `0xFF`-prefixed key otherwise
    /// (the profile then never merges with anything).
    fn sig_key(&self, schema: &Schema, profile: &Profile) -> (Vec<u8>, bool) {
        match profile_signature(schema, profile) {
            Ok(sig) => {
                let mut key = Vec::with_capacity(sig.len() + 1);
                key.push(1);
                key.extend_from_slice(&sig);
                (key, true)
            }
            Err(_) => {
                let mut key = vec![0xFF];
                key.extend_from_slice(&self.next_slot.to_le_bytes());
                (key, false)
            }
        }
    }

    fn insert(
        &mut self,
        schema: &Schema,
        source: SourceKey,
        profile: &Profile,
        next_id: &mut u64,
    ) -> InterestDelta {
        let mut delta = InterestDelta::default();
        let (sig, lowers) = self.sig_key(schema, profile);
        if let Some(old) = self.sources.get(&source) {
            if *old == sig {
                return delta; // same interest re-announced
            }
            delta.merge(self.remove(schema, source, next_id));
        }
        self.sources.insert(source, sig.clone());
        if let Some(entry) = self.by_sig.get_mut(&sig) {
            entry.refs += 1;
            return delta; // duplicate of a tracked signature
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.by_sig.insert(
            sig.clone(),
            SigEntry {
                slot,
                refs: 1,
                profile: profile.clone(),
                lowers,
            },
        );
        if !self.aggregate || !lowers {
            let id = *next_id;
            *next_id += 1;
            self.forwarded.insert(sig, id);
            delta.subscribe.push((id, profile.clone()));
            return delta;
        }
        match self.cover.probe(profile) {
            // Covered by a representative already on the wire: the
            // O(1) duplicate-heavy fast path — no recompute, no
            // traffic.
            Ok(CoverOutcome::Covered { .. }) => delta,
            // A new representative (or a profile dominating existing
            // ones): rebuild the antichain and diff the wire set.
            _ => {
                delta.merge(self.recompute(schema, next_id));
                delta
            }
        }
    }

    fn remove(&mut self, schema: &Schema, source: SourceKey, next_id: &mut u64) -> InterestDelta {
        let mut delta = InterestDelta::default();
        let Some(sig) = self.sources.remove(&source) else {
            return delta;
        };
        let entry = self
            .by_sig
            .get_mut(&sig)
            .expect("sourced signature tracked");
        entry.refs -= 1;
        if entry.refs > 0 {
            return delta;
        }
        let entry = self.by_sig.remove(&sig).expect("entry present");
        if self.forwarded.contains_key(&sig) {
            if self.aggregate && entry.lowers && self.cover.compiled_index_of(entry.slot).is_some()
            {
                // A representative left: rebuild so its covered
                // children are promoted onto the wire (no false
                // negatives after unsubscribing a representative).
                return self.recompute(schema, next_id);
            }
            let id = self.forwarded.remove(&sig).expect("checked present");
            delta.unsubscribe.push(id);
            return delta;
        }
        // Covered contribution: nothing was on the wire for it.
        delta
    }

    /// Rebuilds the covering antichain over every lowerable entry and
    /// diffs the desired wire set against what is forwarded.
    fn recompute(&mut self, schema: &Schema, next_id: &mut u64) -> InterestDelta {
        let mut delta = InterestDelta::default();
        let mut slot_to_sig: HashMap<u32, &Vec<u8>> = HashMap::new();
        for (sig, e) in &self.by_sig {
            slot_to_sig.insert(e.slot, sig);
        }
        let mut desired: Vec<Vec<u8>> = Vec::new();
        match CoverSet::build_bulk(
            schema,
            self.by_sig
                .values()
                .filter(|e| e.lowers)
                .map(|e| (e.slot, &e.profile)),
        ) {
            Ok(cover) => {
                for &slot in cover.rep_slots() {
                    desired.push((*slot_to_sig[&slot]).clone());
                }
                self.cover = cover;
            }
            Err(_) => {
                // Lowering failed mid-rebuild (cannot normally happen
                // for profiles whose signature lowered before): fall
                // back to forwarding everything individually — over-
                // forwarding is safe, losing interest is not.
                self.cover = CoverSet::new(schema);
                desired.extend(self.by_sig.keys().filter(|s| s[0] == 1).cloned());
            }
        }
        desired.extend(
            self.by_sig
                .iter()
                .filter(|(_, e)| !e.lowers)
                .map(|(sig, _)| sig.clone()),
        );
        desired.sort_unstable();
        for sig in &desired {
            if !self.forwarded.contains_key(sig) {
                let id = *next_id;
                *next_id += 1;
                self.forwarded.insert(sig.clone(), id);
                delta.subscribe.push((id, self.by_sig[sig].profile.clone()));
            }
        }
        let mut stale: Vec<Vec<u8>> = self
            .forwarded
            .keys()
            .filter(|sig| desired.binary_search(sig).is_err())
            .cloned()
            .collect();
        stale.sort_unstable();
        for sig in stale {
            let id = self.forwarded.remove(&sig).expect("stale key present");
            delta.unsubscribe.push(id);
        }
        delta
    }

    /// The `Subscribe`s currently on the wire, ascending by id — what
    /// a reconnecting peer with a new epoch must be re-offered.
    fn forwarded_entries(&self) -> Vec<(u64, Profile)> {
        let mut out: Vec<(u64, Profile)> = self
            .forwarded
            .iter()
            .map(|(sig, &id)| (id, self.by_sig[sig].profile.clone()))
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Number of interest rows currently forwarded (the antichain
    /// size with aggregation on; the distinct-signature count off).
    fn forwarded_count(&self) -> usize {
        self.forwarded.len()
    }
}

/// An accepted TCP connection whose first frame (the identifying
/// `Hello`) has not fully arrived yet.
struct PendingAccept {
    stream: TcpStream,
    buf: Vec<u8>,
    deadline: Instant,
}

/// Mutable federation state, behind one mutex (the pump is the only
/// hot path and publishes only enqueue).
struct FedState {
    links: Vec<PeerLink>,
    interest: HashMap<u64, PeerInterest>,
    /// Per-peer outbound interest ledgers (what *we* forward).
    outbound: HashMap<u64, OutboundInterest>,
    /// Local subscriptions contributing interest: id → profile.
    local_subs: HashMap<u64, Profile>,
    epoch: u64,
    /// Allocator for forwarded-interest wire ids (unique across all
    /// links so covering representatives never collide).
    next_interest_id: u64,
    /// Per-origin sequence stamped on the next locally published row.
    next_origin_seq: u64,
    /// Highest origin sequence seen per origin broker (multi-hop
    /// duplicate suppression; exact on acyclic overlays).
    origin_floors: HashMap<u64, u64>,
    scratch: SnapshotScratch,
    ix_scratch: IndexedEvent,
    /// Reusable arena for batched egress resolution and ingress
    /// assembly.
    batch_scratch: IndexedBatch,
    listener: Option<TcpListener>,
    pending_accepts: Vec<PendingAccept>,
    /// Passive-side adoption slots, by peer node id.
    slots: HashMap<u64, AdoptSlot>,
    delivered_rows: u64,
    rejected_rows: u64,
    forwarded_rows: u64,
    publish_failures: u64,
    origin_duplicates: u64,
}

/// A federated broker endpoint: wraps an [`Broker`] (shared, so the
/// application keeps using it directly for purely local work) and
/// manages the peer links.
pub struct Federation {
    broker: Arc<Broker>,
    schema: Arc<Schema>,
    node: u64,
    aggregate_interest: bool,
    max_hops: u8,
    link_config: LinkConfig,
    state: Mutex<FedState>,
}

impl Federation {
    /// Wraps `broker` as a federation endpoint. No I/O happens until
    /// peers are added and [`Federation::pump`] runs.
    #[must_use]
    pub fn new(broker: Arc<Broker>, config: FederationConfig) -> Self {
        let schema = broker.schema_shared();
        Federation {
            broker,
            schema,
            node: config.node,
            aggregate_interest: config.aggregate_interest,
            max_hops: config.max_hops,
            link_config: config.link,
            state: Mutex::new(FedState {
                links: Vec::new(),
                interest: HashMap::new(),
                outbound: HashMap::new(),
                local_subs: HashMap::new(),
                epoch: config.epoch,
                next_interest_id: 1,
                next_origin_seq: 1,
                origin_floors: HashMap::new(),
                scratch: SnapshotScratch::new(),
                ix_scratch: IndexedEvent::new(),
                batch_scratch: IndexedBatch::new(),
                listener: None,
                pending_accepts: Vec::new(),
                slots: HashMap::new(),
                delivered_rows: 0,
                rejected_rows: 0,
                forwarded_rows: 0,
                publish_failures: 0,
                origin_duplicates: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The wrapped broker.
    #[must_use]
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// This endpoint's node id.
    #[must_use]
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Adds a peer over an explicit transport (tests use the
    /// fault-injection network here). `recv_floor` is the persisted
    /// receive floor from a previous incarnation, 0 for a fresh pairing.
    pub fn add_peer(&self, peer: u64, transport: Box<dyn Transport>, recv_floor: u64) {
        let st = &mut *self.lock();
        let mut link = PeerLink::new(
            self.node,
            peer,
            Arc::clone(&self.schema),
            st.epoch,
            recv_floor,
            transport,
            self.link_config,
        );
        // Build the link's outbound ledger from the interest that
        // already exists — local subscriptions, plus (multi-hop)
        // interest learned from other peers — and forward its
        // covering antichain; later contributions arrive as deltas.
        let mut ledger = OutboundInterest::new(&self.schema, self.aggregate_interest);
        let mut delta = InterestDelta::default();
        let mut ids: Vec<u64> = st.local_subs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let profile = st.local_subs[&id].clone();
            delta.merge(ledger.insert(
                &self.schema,
                SourceKey::Local(id),
                &profile,
                &mut st.next_interest_id,
            ));
        }
        if self.max_hops > 0 {
            let mut peers: Vec<u64> = st.interest.keys().copied().filter(|p| *p != peer).collect();
            peers.sort_unstable();
            for p in peers {
                let mut sids: Vec<u64> = st.interest[&p].subs.keys().copied().collect();
                sids.sort_unstable();
                for sid in sids {
                    let profile = st.interest[&p].subs[&sid].profile.clone();
                    delta.merge(ledger.insert(
                        &self.schema,
                        SourceKey::Remote { peer: p, id: sid },
                        &profile,
                        &mut st.next_interest_id,
                    ));
                }
            }
        }
        delta.apply(&mut link);
        st.outbound.insert(peer, ledger);
        st.links.retain(|l| l.peer() != peer);
        st.links.push(link);
    }

    /// Adds a TCP peer. The side with the lower node id dials `addr`;
    /// the higher side waits for the peer to dial in through this
    /// endpoint's [`Federation::bind`] listener.
    pub fn add_tcp_peer(&self, peer: u64, addr: SocketAddr, recv_floor: u64) {
        let transport: Box<dyn Transport> = if self.node < peer {
            Box::new(TcpTransport::dial(addr))
        } else {
            let slot: AdoptSlot = Arc::new(Mutex::new(AdoptState::default()));
            self.lock().slots.insert(peer, Arc::clone(&slot));
            Box::new(TcpTransport::passive(slot))
        };
        self.add_peer(peer, transport, recv_floor);
    }

    /// Starts listening for inbound federation connections. Returns
    /// the bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(&self, addr: SocketAddr) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        self.lock().listener = Some(listener);
        Ok(bound)
    }

    /// Registers a weighted subscription locally and offers its
    /// profile to every peer's outbound ledger, so remote events
    /// matching it reach this broker. The weight only shapes the
    /// *local* broker's cost model; it never crosses the wire. With
    /// interest aggregation the profile is forwarded only when no
    /// already-forwarded profile covers it.
    ///
    /// # Errors
    ///
    /// Propagates local subscription errors; forwarding is
    /// best-effort (bounded by the links' overflow policies).
    pub fn subscribe_profile_weighted(
        &self,
        profile: Profile,
        weight: f64,
    ) -> Result<Subscriber, ServiceError> {
        let sub = self
            .broker
            .subscribe_profile_weighted(profile.clone(), weight)?;
        let id = sub.id().get();
        let st = &mut *self.lock();
        st.local_subs.insert(id, profile.clone());
        for link in &mut st.links {
            if let Some(ledger) = st.outbound.get_mut(&link.peer()) {
                ledger
                    .insert(
                        &self.schema,
                        SourceKey::Local(id),
                        &profile,
                        &mut st.next_interest_id,
                    )
                    .apply(link);
            }
        }
        Ok(sub)
    }

    /// [`Federation::subscribe_profile_weighted`] with weight 1.
    ///
    /// # Errors
    ///
    /// Propagates local subscription errors.
    pub fn subscribe_profile(&self, profile: Profile) -> Result<Subscriber, ServiceError> {
        self.subscribe_profile_weighted(profile, 1.0)
    }

    /// Parses a profile expression and subscribes (see
    /// [`Broker::subscribe_parsed`] for the syntax).
    ///
    /// # Errors
    ///
    /// Propagates parse and subscription errors.
    pub fn subscribe_parsed(&self, text: &str) -> Result<Subscriber, ServiceError> {
        let profile =
            ens_types::parse::parse_profile(&self.schema, text, ens_types::ProfileId::new(0))
                .map_err(ServiceError::Types)?;
        self.subscribe_profile(profile)
    }

    /// Cancels a subscription locally and retracts it from peers.
    ///
    /// # Errors
    ///
    /// Propagates [`Broker::unsubscribe`] errors.
    pub fn unsubscribe(&self, id: SubscriptionId) -> Result<(), ServiceError> {
        self.broker.unsubscribe(id)?;
        let st = &mut *self.lock();
        if st.local_subs.remove(&id.get()).is_some() {
            for link in &mut st.links {
                if let Some(ledger) = st.outbound.get_mut(&link.peer()) {
                    ledger
                        .remove(
                            &self.schema,
                            SourceKey::Local(id.get()),
                            &mut st.next_interest_id,
                        )
                        .apply(link);
                }
            }
        }
        Ok(())
    }

    /// Publishes a locally originated event: local subscribers are
    /// notified through the broker, and the event is forwarded to
    /// every peer whose interest filter matches it.
    ///
    /// # Errors
    ///
    /// Propagates local publish errors.
    pub fn publish(&self, event: &Event) -> Result<PublishReceipt, ServiceError> {
        let receipt = self.broker.publish(event)?;
        let st = &mut *self.lock();
        let mut batch = std::mem::take(&mut st.batch_scratch);
        let resolved = batch.resolve_into(&self.schema, std::iter::once(event));
        if let Err(e) = resolved {
            st.batch_scratch = batch;
            return Err(ServiceError::Types(e));
        }
        self.forward_indexed(st, &batch);
        st.batch_scratch = batch;
        Ok(receipt)
    }

    /// Publishes a locally originated batch: the events are resolved
    /// to index rows once, block-matched locally through
    /// [`Broker::publish_batch_prepared`], and the *same* rows are
    /// forwarded as one `Batch` frame per interested peer.
    ///
    /// # Errors
    ///
    /// Propagates local publish errors.
    pub fn publish_batch(
        &self,
        events: &[Arc<Event>],
    ) -> Result<Vec<PublishReceipt>, ServiceError> {
        if events.is_empty() {
            return Ok(Vec::new());
        }
        let st = &mut *self.lock();
        let mut batch = std::mem::take(&mut st.batch_scratch);
        let resolved = batch.resolve_into(&self.schema, events.iter().map(Arc::as_ref));
        if let Err(e) = resolved {
            st.batch_scratch = batch;
            return Err(ServiceError::Types(e));
        }
        let receipts = match self.broker.publish_batch_prepared(events, &batch) {
            Ok(r) => r,
            Err(e) => {
                st.batch_scratch = batch;
                return Err(e);
            }
        };
        self.forward_indexed(st, &batch);
        st.batch_scratch = batch;
        Ok(receipts)
    }

    /// Matches each resolved row against every peer's interest filter
    /// and enqueues one `Batch` per interested peer, stamping each row
    /// with this broker's origin id and a fresh origin sequence.
    /// Origin sequences are consumed even when no link is up so that
    /// they stay unique per published event across link churn.
    fn forward_indexed(&self, st: &mut FedState, batch: &IndexedBatch) {
        let first = st.next_origin_seq;
        st.next_origin_seq += batch.len() as u64;
        if st.links.is_empty() {
            return;
        }
        let width = batch.width() as u32;
        let mut per_peer: HashMap<u64, (Vec<u64>, Vec<Vec<u64>>)> = HashMap::new();
        for i in 0..batch.len() {
            let row = batch.row(i);
            st.ix_scratch.copy_from_raw(row);
            for link in &st.links {
                let peer = link.peer();
                let Some(interest) = st.interest.get(&peer) else {
                    continue;
                };
                let Some(snapshot) = interest.snapshot.as_ref() else {
                    continue;
                };
                snapshot.match_into(&st.ix_scratch, &mut st.scratch, false);
                if st.scratch.is_match() {
                    let (seqs, rows) = per_peer.entry(peer).or_default();
                    seqs.push(first + i as u64);
                    rows.push(row.to_vec());
                }
            }
        }
        for link in &mut st.links {
            if let Some((origin_seqs, rows)) = per_peer.remove(&link.peer()) {
                st.forwarded_rows += rows.len() as u64;
                link.enqueue(Msg::Batch {
                    first_seq: 0,
                    origin: self.node,
                    ttl: u32::from(self.max_hops),
                    width,
                    origin_seqs,
                    rows,
                });
            }
        }
    }

    /// Accepts pending inbound TCP connections and routes each to its
    /// peer's adoption slot once the identifying `Hello` arrives.
    fn poll_accepts(&self, st: &mut FedState) {
        if let Some(listener) = st.listener.as_ref() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_ok() {
                            st.pending_accepts.push(PendingAccept {
                                stream,
                                buf: Vec::new(),
                                deadline: Instant::now() + Duration::from_secs(2),
                            });
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        let mut i = 0;
        while i < st.pending_accepts.len() {
            enum Verdict {
                Keep,
                Drop,
                Adopt(u64),
            }
            let pa = &mut st.pending_accepts[i];
            let mut verdict = Verdict::Keep;
            let mut chunk = [0u8; 4096];
            loop {
                match pa.stream.read(&mut chunk) {
                    Ok(0) => {
                        verdict = Verdict::Drop;
                        break;
                    }
                    Ok(n) => pa.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        verdict = Verdict::Drop;
                        break;
                    }
                }
            }
            if matches!(verdict, Verdict::Keep) {
                match identify_hello(&pa.buf, &self.schema) {
                    Ok(Some(node)) => verdict = Verdict::Adopt(node),
                    Ok(None) => {
                        if Instant::now() >= pa.deadline {
                            verdict = Verdict::Drop;
                        }
                    }
                    Err(()) => verdict = Verdict::Drop,
                }
            }
            match verdict {
                Verdict::Keep => i += 1,
                Verdict::Drop => {
                    st.pending_accepts.swap_remove(i);
                }
                Verdict::Adopt(node) => {
                    let pa = st.pending_accepts.swap_remove(i);
                    if let Some(slot) = st.slots.get(&node) {
                        let mut s = slot.lock().unwrap_or_else(|e| e.into_inner());
                        // Hand over the stream plus everything read,
                        // *including* the Hello frame, so the link
                        // observes the greeting normally.
                        s.stream = Some(pa.stream);
                        s.preread = pa.buf;
                    }
                }
            }
        }
    }

    /// Drives all peer links once: accepts inbound connections,
    /// reconnects, exchanges traffic, republishes remote events
    /// locally, and reports deliveries and receive floors.
    ///
    /// Call this in a loop with a monotone clock; the federation does
    /// nothing between pumps.
    ///
    /// # Errors
    ///
    /// Propagates interest-filter compilation errors for forwarded
    /// subscriptions. Local publish failures for remote events are
    /// *not* propagated — the link has already advanced past those
    /// rows, so aborting would silently drop the rest of the batch;
    /// they are counted in [`FederationMetrics::publish_failures`]
    /// instead.
    pub fn pump(&self, now_ms: u64) -> Result<PumpReport, ServiceError> {
        let mut report = PumpReport::default();
        let st = &mut *self.lock();
        self.poll_accepts(st);
        let mut events = Vec::new();
        for link in &mut st.links {
            link.poll(now_ms, &mut events);
        }
        for ev in events {
            match ev {
                LinkEvent::Established {
                    peer,
                    epoch_changed,
                } => {
                    if epoch_changed {
                        // The peer restarted: our previously forwarded
                        // subscriptions died with it. Re-offer the
                        // ledger's covering set — exactly what the old
                        // incarnation knew (its receive floor dedupes
                        // any that survived in flight).
                        let resend: Vec<(u64, Profile)> = st
                            .outbound
                            .get(&peer)
                            .map(OutboundInterest::forwarded_entries)
                            .unwrap_or_default();
                        if let Some(link) = st.links.iter_mut().find(|l| l.peer() == peer) {
                            for (id, profile) in resend {
                                link.enqueue(Msg::Subscribe {
                                    seq: 0,
                                    id,
                                    profile,
                                });
                            }
                        }
                        // The peer's forwarded interest is *kept*: the
                        // new incarnation's first Subscribe prunes it
                        // (see [`PeerInterest`]). Clearing it here
                        // would open an under-forwarding window — loss
                        // — between this greeting and that Subscribe.
                    }
                    report.established.push((peer, epoch_changed));
                }
                LinkEvent::SchemaMismatch { peer, .. } => {
                    report.schema_mismatch.push(peer);
                }
                LinkEvent::Subscribe {
                    peer,
                    id,
                    profile,
                    epoch,
                } => {
                    let interest = st.interest.entry(peer).or_default();
                    // First word from a newer incarnation retires
                    // everything inherited from older ones.
                    let mut stale: Vec<u64> = interest
                        .subs
                        .iter()
                        .filter(|(_, e)| e.epoch < epoch)
                        .map(|(sid, _)| *sid)
                        .collect();
                    stale.sort_unstable();
                    interest.subs.retain(|_, e| e.epoch >= epoch);
                    interest.subs.insert(
                        id,
                        InterestEntry {
                            epoch,
                            profile: profile.clone(),
                        },
                    );
                    interest.recompile(&self.schema)?;
                    if self.max_hops > 0 {
                        // Mirror the remote interest into every *other*
                        // peer's ledger so events from elsewhere can
                        // route through this broker toward `peer`.
                        for link in &mut st.links {
                            let out = link.peer();
                            if out == peer {
                                continue;
                            }
                            let Some(ledger) = st.outbound.get_mut(&out) else {
                                continue;
                            };
                            let mut delta = InterestDelta::default();
                            for sid in &stale {
                                delta.merge(ledger.remove(
                                    &self.schema,
                                    SourceKey::Remote { peer, id: *sid },
                                    &mut st.next_interest_id,
                                ));
                            }
                            delta.merge(ledger.insert(
                                &self.schema,
                                SourceKey::Remote { peer, id },
                                &profile,
                                &mut st.next_interest_id,
                            ));
                            delta.apply(link);
                        }
                    }
                }
                LinkEvent::Unsubscribe { peer, id } => {
                    if let Some(interest) = st.interest.get_mut(&peer) {
                        interest.subs.remove(&id);
                        interest.recompile(&self.schema)?;
                    }
                    if self.max_hops > 0 {
                        for link in &mut st.links {
                            let out = link.peer();
                            if out == peer {
                                continue;
                            }
                            let Some(ledger) = st.outbound.get_mut(&out) else {
                                continue;
                            };
                            ledger
                                .remove(
                                    &self.schema,
                                    SourceKey::Remote { peer, id },
                                    &mut st.next_interest_id,
                                )
                                .apply(link);
                        }
                    }
                }
                LinkEvent::Rows {
                    peer,
                    first_seq,
                    origin,
                    ttl,
                    origin_seqs,
                    rows,
                    skip,
                } => {
                    // Batched ingress: validate and dedupe each row,
                    // collect the survivors into one IndexedBatch, and
                    // resolve + block-match them through the broker in
                    // a single pass.
                    let mut batch = std::mem::take(&mut st.batch_scratch);
                    batch.reset(self.schema.len().max(1));
                    let mut accepted: Vec<(Arc<Event>, u64, u64)> = Vec::new();
                    for (offset, row) in rows.iter().enumerate().skip(skip) {
                        if row.len() != self.schema.len() {
                            st.rejected_rows += 1;
                            continue;
                        }
                        let oseq = origin_seqs[offset];
                        if origin == self.node {
                            // Our own event echoed around a cycle.
                            st.origin_duplicates += 1;
                            continue;
                        }
                        if self.max_hops > 0 {
                            // Per-origin floor: exact duplicate
                            // suppression on acyclic overlays, where
                            // each origin's rows arrive along a single
                            // FIFO path and thus in seq order.
                            let floor = st.origin_floors.entry(origin).or_insert(0);
                            if oseq <= *floor {
                                st.origin_duplicates += 1;
                                continue;
                            }
                            *floor = oseq;
                        }
                        st.ix_scratch.copy_from_raw(row);
                        let event = match st.ix_scratch.to_event(&self.schema) {
                            Ok(e) => Arc::new(e),
                            Err(_) => {
                                st.rejected_rows += 1;
                                continue;
                            }
                        };
                        batch.push_raw(row);
                        accepted.push((event, first_seq + offset as u64, oseq));
                    }
                    if !accepted.is_empty() {
                        let events: Vec<Arc<Event>> =
                            accepted.iter().map(|(e, _, _)| Arc::clone(e)).collect();
                        // A publish failure must NOT abort the pump:
                        // the link already advanced its floor past
                        // this whole batch, so the next lazy ack will
                        // tell the sender to forget these rows either
                        // way. Bailing out here would additionally
                        // drop every later link event on the floor.
                        // Count the failed rows and keep going.
                        if self.broker.publish_batch_prepared(&events, &batch).is_ok() {
                            st.delivered_rows += accepted.len() as u64;
                            for (event, seq, origin_seq) in &accepted {
                                report.delivered.push(RemoteDelivery {
                                    peer,
                                    seq: *seq,
                                    origin,
                                    origin_seq: *origin_seq,
                                    event: Arc::clone(event),
                                });
                            }
                        } else {
                            st.publish_failures += accepted.len() as u64;
                        }
                        // Transit: re-forward the accepted rows along
                        // the overlay while the hop budget lasts —
                        // never back to the ingress link, never back
                        // to the origin itself. Forwarding happens
                        // even when local publish failed: routing is
                        // this broker's duty to the overlay, delivery
                        // only to its own subscribers.
                        if self.max_hops > 0 && ttl > 0 {
                            let ttl_out = (ttl - 1).min(u32::from(self.max_hops));
                            let width = batch.width() as u32;
                            let mut per_peer: HashMap<u64, (Vec<u64>, Vec<Vec<u64>>)> =
                                HashMap::new();
                            for (i, (_, _, oseq)) in accepted.iter().enumerate() {
                                let row = batch.row(i);
                                st.ix_scratch.copy_from_raw(row);
                                for link in &st.links {
                                    let out = link.peer();
                                    if out == peer || out == origin {
                                        continue;
                                    }
                                    let Some(interest) = st.interest.get(&out) else {
                                        continue;
                                    };
                                    let Some(snapshot) = interest.snapshot.as_ref() else {
                                        continue;
                                    };
                                    snapshot.match_into(&st.ix_scratch, &mut st.scratch, false);
                                    if st.scratch.is_match() {
                                        let (seqs, out_rows) = per_peer.entry(out).or_default();
                                        seqs.push(*oseq);
                                        out_rows.push(row.to_vec());
                                    }
                                }
                            }
                            for link in &mut st.links {
                                if let Some((oseqs, out_rows)) = per_peer.remove(&link.peer()) {
                                    st.forwarded_rows += out_rows.len() as u64;
                                    link.enqueue(Msg::Batch {
                                        first_seq: 0,
                                        origin,
                                        ttl: ttl_out,
                                        width,
                                        origin_seqs: oseqs,
                                        rows: out_rows,
                                    });
                                }
                            }
                        }
                    }
                    st.batch_scratch = batch;
                }
                LinkEvent::Down { .. } => {}
            }
        }
        report.floors = st.links.iter().map(|l| (l.peer(), l.recv_high())).collect();
        Ok(report)
    }

    /// Number of peers whose forwarded interest currently compiles to
    /// a live filter — i.e. peers that would receive matching events
    /// published here. Publishers that must not race the initial
    /// subscription exchange can gate on this.
    #[must_use]
    pub fn interested_peers(&self) -> usize {
        self.lock()
            .interest
            .values()
            .filter(|i| i.snapshot.is_some())
            .count()
    }

    /// Per-peer receive floors (highest contiguous sequence received),
    /// the state to persist for exactly-once restarts.
    #[must_use]
    pub fn recv_floors(&self) -> Vec<(u64, u64)> {
        self.lock()
            .links
            .iter()
            .map(|l| (l.peer(), l.recv_high()))
            .collect()
    }

    /// Outbound messages queued or awaiting acknowledgement across
    /// all links — 0 means every forwarded event has been confirmed
    /// received (useful for draining before shutdown).
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.lock().links.iter().map(PeerLink::backlog).sum()
    }

    /// Number of interest rows currently forwarded to `peer` — with
    /// aggregation this is the size of the minimal covering antichain
    /// (plus any profiles the covering analysis could not lower),
    /// which is what the routing-efficiency benchmark measures.
    #[must_use]
    pub fn forwarded_interest(&self, peer: u64) -> usize {
        self.lock()
            .outbound
            .get(&peer)
            .map_or(0, OutboundInterest::forwarded_count)
    }

    /// Snapshot of the per-origin duplicate-suppression floors
    /// (origin broker id, highest accepted origin sequence). Persist
    /// these alongside the broker checkpoint and restore them with
    /// [`Federation::set_origin_floor`] to keep multi-hop
    /// exactly-once across a restart.
    #[must_use]
    pub fn origin_floors(&self) -> Vec<(u64, u64)> {
        let st = self.lock();
        let mut floors: Vec<(u64, u64)> = st.origin_floors.iter().map(|(o, f)| (*o, *f)).collect();
        floors.sort_unstable();
        floors
    }

    /// Restores a per-origin duplicate-suppression floor (see
    /// [`Federation::origin_floors`]). Only raises the floor — a
    /// stale snapshot can never re-open a window for duplicates.
    pub fn set_origin_floor(&self, origin: u64, floor: u64) {
        let mut st = self.lock();
        let f = st.origin_floors.entry(origin).or_insert(0);
        *f = (*f).max(floor);
    }

    /// Highest origin sequence this broker has stamped on its own
    /// published events (0 if none). Persist with the checkpoint and
    /// restore via [`Federation::set_last_origin_seq`] so a restarted
    /// broker never reuses a sequence its peers have already seen.
    #[must_use]
    pub fn last_origin_seq(&self) -> u64 {
        self.lock().next_origin_seq - 1
    }

    /// Restores the origin-sequence counter (see
    /// [`Federation::last_origin_seq`]). Only moves forward.
    pub fn set_last_origin_seq(&self, last: u64) {
        let mut st = self.lock();
        st.next_origin_seq = st.next_origin_seq.max(last + 1);
    }

    /// Updates the announced epoch (affects future greetings).
    pub fn set_epoch(&self, epoch: u64) {
        let mut st = self.lock();
        st.epoch = epoch;
        for link in &mut st.links {
            link.set_epoch(epoch);
        }
    }

    /// Aggregated counters across all peer links.
    #[must_use]
    pub fn metrics(&self) -> FederationMetrics {
        let st = self.lock();
        let mut m = FederationMetrics {
            delivered_rows: st.delivered_rows,
            rejected_rows: st.rejected_rows,
            forwarded_rows: st.forwarded_rows,
            publish_failures: st.publish_failures,
            origin_duplicates: st.origin_duplicates,
            ..FederationMetrics::default()
        };
        for link in &st.links {
            let s: LinkStats = link.stats();
            m.sent += s.sent;
            m.retransmits += s.retransmits;
            m.overflow_dropped += s.overflow_dropped;
            m.duplicates += s.duplicates;
            m.gap_drops += s.gap_drops;
            m.resets += s.resets;
            m.unencodable += s.unencodable;
            m.peers_up += usize::from(link.is_up());
            m.peers_failed += usize::from(link.is_failed());
        }
        m
    }
}

/// Tries to parse the first complete frame of an accepted connection
/// as a `Hello`, returning the announcing node id. `Ok(None)` means
/// incomplete; `Err` means the stream is not a federation greeting.
fn identify_hello(buf: &[u8], schema: &Schema) -> Result<Option<u64>, ()> {
    if buf.len() < wire::FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len > wire::MAX_FRAME {
        return Err(());
    }
    if buf.len() < wire::FRAME_HEADER + len {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let payload = &buf[wire::FRAME_HEADER..wire::FRAME_HEADER + len];
    if ens_filter::persist::crc32(payload) != crc {
        return Err(());
    }
    match Msg::decode(payload, schema) {
        Ok(Msg::Hello { node, .. }) => Ok(Some(node)),
        _ => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use ens_types::{Domain, Predicate};
    use sim::SimNet;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("x", Domain::int(0, 999))
            .unwrap()
            .build()
    }

    fn fed(net: &SimNet, node: u64, peers: &[u64]) -> Federation {
        let broker = Arc::new(Broker::new(&schema(), BrokerConfig::default()).unwrap());
        let f = Federation::new(
            broker,
            FederationConfig {
                node,
                epoch: 1,
                aggregate_interest: true,
                max_hops: 0,
                link: link::LinkConfig {
                    heartbeat_ms: 50,
                    timeout_ms: 300,
                    backoff_base_ms: 20,
                    backoff_max_ms: 200,
                    rto_ms: 40,
                    send_window: 16,
                    pending_cap: 0,
                    overflow: crate::channel::OverflowPolicy::DropOldest,
                },
            },
        );
        for &p in peers {
            f.add_peer(p, Box::new(net.transport(node, p)), 0);
        }
        f
    }

    fn pump_all(net: &SimNet, feds: &[&Federation], steps: u32) -> Vec<RemoteDelivery> {
        let mut delivered = Vec::new();
        for _ in 0..steps {
            let now = net.now_ms();
            for f in feds {
                delivered.extend(f.pump(now).unwrap().delivered);
            }
            net.advance(10);
        }
        delivered
    }

    fn event(s: &Schema, x: i64) -> Event {
        Event::builder(s).value("x", x).unwrap().build()
    }

    #[test]
    fn subscriptions_route_events_across_the_mesh() {
        let net = SimNet::new(1);
        let a = fed(&net, 1, &[2]);
        let b = fed(&net, 2, &[1]);
        // b wants x >= 500; a publishes 400 (no) and 600 (yes).
        let sub = b
            .subscribe_profile(
                Profile::builder(b.broker().schema())
                    .predicate("x", Predicate::ge(500))
                    .unwrap()
                    .build(ens_types::ProfileId::new(0)),
            )
            .unwrap();
        pump_all(&net, &[&a, &b], 5);
        let s = schema();
        a.publish(&event(&s, 400)).unwrap();
        a.publish(&event(&s, 600)).unwrap();
        let delivered = pump_all(&net, &[&a, &b], 10);
        // Only b receives, and only the matching event.
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].peer, 1);
        // The remote event notified b's local subscriber.
        let n = sub.try_recv().expect("notification should be queued");
        assert_eq!(
            n.event.value(b.broker().schema().attr("x").unwrap()),
            Some(&ens_types::Value::Int(600))
        );
        // a forwarded exactly one row.
        assert_eq!(a.metrics().forwarded_rows, 1);
        assert_eq!(b.metrics().delivered_rows, 1);
    }

    #[test]
    fn unsubscribe_stops_forwarding() {
        let net = SimNet::new(2);
        let a = fed(&net, 1, &[2]);
        let b = fed(&net, 2, &[1]);
        let sub = b.subscribe_parsed("profile(x >= 0)").unwrap();
        pump_all(&net, &[&a, &b], 5);
        let s = schema();
        a.publish(&event(&s, 1)).unwrap();
        assert_eq!(pump_all(&net, &[&a, &b], 10).len(), 1);
        b.unsubscribe(sub.id()).unwrap();
        pump_all(&net, &[&a, &b], 10);
        a.publish(&event(&s, 2)).unwrap();
        assert_eq!(pump_all(&net, &[&a, &b], 10).len(), 0);
        assert_eq!(a.metrics().forwarded_rows, 1);
    }

    #[test]
    fn remote_events_are_not_reforwarded() {
        // Triangle mesh: c subscribes everywhere; a publishes. c must
        // see the event exactly once (from a), not re-forwarded via b.
        let net = SimNet::new(3);
        let a = fed(&net, 1, &[2, 3]);
        let b = fed(&net, 2, &[1, 3]);
        let c = fed(&net, 3, &[1, 2]);
        let _sub_b = b.subscribe_parsed("profile(x >= 0)").unwrap();
        let _sub_c = c.subscribe_parsed("profile(x >= 0)").unwrap();
        pump_all(&net, &[&a, &b, &c], 6);
        let s = schema();
        a.publish(&event(&s, 7)).unwrap();
        let delivered = pump_all(&net, &[&a, &b, &c], 12);
        // b and c each get it exactly once, both from node 1.
        assert_eq!(delivered.len(), 2);
        assert!(delivered.iter().all(|d| d.peer == 1));
    }
}
