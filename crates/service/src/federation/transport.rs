//! Transport abstraction under federation links.
//!
//! `PeerLink` (in the private `link` module) is sans-I/O: every
//! byte it moves goes through this [`Transport`] trait, so the same state
//! machine runs over real sockets ([`TcpTransport`]) and over the
//! deterministic fault-injection network
//! ([`SimTransport`](super::sim::SimTransport)) that the robustness
//! suite drives with seeded drop/delay/duplicate/reorder/partition
//! and torn-write faults.
//!
//! A transport moves whole message payloads; the wire frame (length +
//! CRC header) is the transport's concern, which is what lets the sim
//! model torn writes as truncated frames and have them surface
//! exactly like a corrupted TCP stream would: as
//! [`TransportError::Corrupt`].

use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use super::wire::{frame, FrameBuffer};

/// Ceiling on bytes buffered for an unwritable socket. A peer that
/// falls this far behind is indistinguishable from a dead one: the
/// connection is reset and Go-Back-N retransmission covers the
/// buffered traffic on the next connection.
const MAX_WRITE_BUFFER: usize = 16 << 20;

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The connection is gone (EOF, reset, or never established). The
    /// link resets and schedules a reconnect.
    Disconnected,
    /// The byte stream is unrecoverable (CRC mismatch, torn frame,
    /// nonsense length). The link drops the connection — resuming
    /// mid-garbage is impossible — and reconnects.
    Corrupt(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Corrupt(msg) => write!(f, "transport stream corrupt: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A reliable-until-it-isn't, message-framed byte transport.
///
/// Implementations must be non-blocking: `recv` returns `Ok(None)`
/// when nothing is available, and `send` may buffer briefly but must
/// not park the caller indefinitely.
pub trait Transport: Send {
    /// Attempts to (re)establish the connection. Returns whether the
    /// transport is now connected. `now_ms` is the caller's clock so
    /// fault-injection transports can log attempt times.
    fn connect(&mut self, now_ms: u64) -> bool;

    /// Whether the transport currently believes it is connected (it
    /// may learn otherwise on the next send/recv).
    fn is_connected(&self) -> bool;

    /// Sends one message payload (the transport adds framing).
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the connection is gone.
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError>;

    /// Receives the next complete message payload, if one is ready.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] on EOF/reset,
    /// [`TransportError::Corrupt`] when the stream can no longer be
    /// framed.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError>;

    /// Tears the connection down (reconnect may follow later).
    fn close(&mut self);
}

/// Shared slot through which an accept loop hands an inbound
/// connection to the passive side of a [`TcpTransport`].
///
/// TCP federation avoids simultaneous-open glare by convention: the
/// lower node id dials, the higher id listens. The acceptor cannot
/// know which peer a fresh socket belongs to until it reads the first
/// `Hello` frame, so it parses that frame itself and then *adopts*
/// the stream — plus any bytes read beyond the frame — into the slot
/// registered for that peer.
pub type AdoptSlot = Arc<Mutex<AdoptState>>;

/// Contents of an [`AdoptSlot`].
#[derive(Debug, Default)]
pub struct AdoptState {
    /// The accepted, identified stream (taken by the transport).
    pub stream: Option<TcpStream>,
    /// Bytes the acceptor read past the identifying `Hello` frame —
    /// including that frame itself, so the link still observes the
    /// greeting through the normal path.
    pub preread: Vec<u8>,
}

/// How a [`TcpTransport`] obtains its stream.
enum TcpMode {
    /// Actively dial the peer (lower node id).
    Dial(SocketAddr),
    /// Wait for the accept loop to deposit an identified inbound
    /// stream (higher node id).
    Passive(AdoptSlot),
}

/// [`Transport`] over a real TCP socket (`std::net`, non-blocking).
///
/// Sends never block or sleep: bytes the socket will not take
/// immediately are buffered (`wbuf`) and flushed opportunistically on
/// later sends and receives, so a slow peer costs the caller — which
/// typically holds the federation state lock — nothing but memory, up
/// to `MAX_WRITE_BUFFER`.
pub struct TcpTransport {
    mode: TcpMode,
    stream: Option<TcpStream>,
    rbuf: FrameBuffer,
    /// Outbound bytes the socket has not accepted yet.
    wbuf: Vec<u8>,
    /// Flushed prefix of `wbuf`; consumed bytes are compacted lazily.
    wpos: usize,
    connect_timeout: Duration,
}

impl TcpTransport {
    /// A dialing transport: `connect` attempts a TCP connection to
    /// `addr` each time the link's backoff schedule fires.
    #[must_use]
    pub fn dial(addr: SocketAddr) -> Self {
        TcpTransport {
            mode: TcpMode::Dial(addr),
            stream: None,
            rbuf: FrameBuffer::new(),
            wbuf: Vec::new(),
            wpos: 0,
            connect_timeout: Duration::from_millis(250),
        }
    }

    /// A passive transport: `connect` succeeds once the accept loop
    /// has deposited an identified stream into `slot`.
    #[must_use]
    pub fn passive(slot: AdoptSlot) -> Self {
        TcpTransport {
            mode: TcpMode::Passive(slot),
            stream: None,
            rbuf: FrameBuffer::new(),
            wbuf: Vec::new(),
            wpos: 0,
            connect_timeout: Duration::from_millis(250),
        }
    }

    fn drop_stream(&mut self) {
        self.stream = None;
        self.rbuf = FrameBuffer::new();
        self.wbuf.clear();
        self.wpos = 0;
    }

    /// Writes as much buffered outbound data as the socket will take
    /// right now, without blocking or sleeping.
    fn flush_wbuf(&mut self) -> Result<(), TransportError> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(TransportError::Disconnected);
        };
        while self.wpos < self.wbuf.len() {
            match stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.drop_stream();
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.drop_stream();
                    return Err(TransportError::Disconnected);
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 64 * 1024 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn connect(&mut self, _now_ms: u64) -> bool {
        if self.stream.is_some() {
            return true;
        }
        match &self.mode {
            TcpMode::Dial(addr) => {
                match TcpStream::connect_timeout(addr, self.connect_timeout) {
                    Ok(s) => {
                        // Federation traffic is latency-sensitive
                        // control traffic; batching is done above.
                        let _ = s.set_nodelay(true);
                        if s.set_nonblocking(true).is_err() {
                            return false;
                        }
                        self.stream = Some(s);
                        true
                    }
                    Err(_) => false,
                }
            }
            TcpMode::Passive(slot) => {
                let mut st = slot.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(s) = st.stream.take() {
                    if s.set_nonblocking(true).is_err() {
                        return false;
                    }
                    let preread = std::mem::take(&mut st.preread);
                    drop(st);
                    self.rbuf = FrameBuffer::new();
                    self.rbuf.extend(&preread);
                    self.stream = Some(s);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        if self.stream.is_none() {
            return Err(TransportError::Disconnected);
        }
        if self.wbuf.len() - self.wpos + payload.len() > MAX_WRITE_BUFFER {
            // The peer has not drained in so long that buffering more
            // would be unbounded; treat it as dead. The link keeps
            // the unacked copies and retransmits after reconnecting.
            self.drop_stream();
            return Err(TransportError::Disconnected);
        }
        self.wbuf.extend_from_slice(&frame(payload));
        self.flush_wbuf()
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        // Push any backlog the socket refused during sends — receive
        // polls happen every pump, so a temporarily full socket
        // drains without anyone sleeping on it.
        if self.stream.is_some() && self.wpos < self.wbuf.len() {
            self.flush_wbuf()?;
        }
        // Serve already-buffered frames first (e.g. adopted preread).
        match self.rbuf.next_frame() {
            Ok(Some(p)) => return Ok(Some(p)),
            Ok(None) => {}
            Err(e) => {
                self.drop_stream();
                return Err(TransportError::Corrupt(e.to_string()));
            }
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(TransportError::Disconnected);
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    self.drop_stream();
                    return Err(TransportError::Disconnected);
                }
                Ok(n) => {
                    self.rbuf.extend(&chunk[..n]);
                    match self.rbuf.next_frame() {
                        Ok(Some(p)) => return Ok(Some(p)),
                        Ok(None) => {}
                        Err(e) => {
                            self.drop_stream();
                            return Err(TransportError::Corrupt(e.to_string()));
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.drop_stream();
                    return Err(TransportError::Disconnected);
                }
            }
        }
    }

    fn close(&mut self) {
        self.drop_stream();
    }
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match &self.mode {
            TcpMode::Dial(addr) => format!("dial {addr}"),
            TcpMode::Passive(_) => "passive".to_string(),
        };
        f.debug_struct("TcpTransport")
            .field("mode", &mode)
            .field("connected", &self.stream.is_some())
            .finish()
    }
}
