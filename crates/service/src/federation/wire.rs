//! Binary wire protocol for broker federation.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! [u32 len][u32 crc32(payload)][payload: len bytes]
//! ```
//!
//! both header words little-endian. The payload reuses the checkpoint
//! codec primitives from [`ens_filter::persist`] ([`ByteWriter`] /
//! [`ByteReader`]), so the federation layer inherits the same varint,
//! value and profile encodings the durable state already exercises —
//! one codec, two consumers.
//!
//! Payload tags:
//!
//! | tag | message       | body |
//! |-----|---------------|------|
//! | 1   | `Hello`       | node, `schema_hash`, epoch, `recv_high`, `your_epoch` |
//! | 2   | `Subscribe`   | seq, id, profile |
//! | 3   | `Unsubscribe` | seq, id |
//! | 4   | `Batch`       | `first_seq`, origin, ttl, count, width, rows (`origin_seq`, then cells as `vu64(idx+1)`, 0 = missing) |
//! | 5   | `Ack`         | high (cumulative) |
//! | 6   | `Heartbeat`   | — |
//!
//! `Subscribe`/`Unsubscribe` consume one sequence number; a `Batch`
//! consumes one per row. `Hello`, `Ack` and `Heartbeat` are
//! unsequenced control traffic.

use ens_filter::persist::{crc32, ByteReader, ByteWriter, PersistError};
use ens_types::{IndexedEvent, Profile, Schema};

use crate::persist::{decode_profile, encode_profile, schema_fingerprint};

/// Upper bound on a single frame's payload (64 MiB). A header
/// declaring more than this is treated as corruption, not a request
/// to allocate.
pub(crate) const MAX_FRAME: usize = 1 << 26;

/// Frame header size: length word plus CRC word.
pub(crate) const FRAME_HEADER: usize = 8;

/// FNV-1a 64-bit hash of the schema's canonical byte form. Two brokers
/// may federate only when their hashes agree — a mismatch is a
/// configuration error, reported once and not retried.
#[must_use]
pub fn schema_hash(schema: &Schema) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in schema_fingerprint(schema) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps `payload` into one wire frame.
#[must_use]
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental deframer over a byte stream.
///
/// Feed raw reads with [`FrameBuffer::extend`]; pull complete,
/// CRC-verified payloads with [`FrameBuffer::next_frame`]. Torn or
/// bit-flipped frames surface as [`PersistError`] — the link layer
/// treats that as a broken connection and resets.
#[derive(Debug, Default)]
pub(crate) struct FrameBuffer {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    pos: usize,
}

impl FrameBuffer {
    pub(crate) fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw bytes read from the transport.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing so a long-lived connection does not
        // accumulate consumed prefixes.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub(crate) fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame's payload, `None` if more
    /// bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns a corruption error for an oversized length word or a
    /// CRC mismatch; the stream is unrecoverable past that point.
    pub(crate) fn next_frame(&mut self) -> Result<Option<Vec<u8>>, PersistError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(PersistError::new(format!(
                "frame length {len} exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        if avail.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let want = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes"));
        let payload = &avail[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != want {
            return Err(PersistError::new("frame CRC mismatch"));
        }
        let out = payload.to_vec();
        self.pos += FRAME_HEADER + len;
        Ok(Some(out))
    }
}

/// A decoded federation message.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Msg {
    /// Connection greeting, sent by both sides immediately after the
    /// transport comes up. `recv_high` doubles as an implicit
    /// cumulative ack so a reconnecting sender can fast-forward past
    /// traffic the peer already has — but only when `your_epoch` (the
    /// sender's last-known epoch of the *recipient*, `None` when it
    /// has never greeted the recipient) matches the recipient's
    /// current epoch. A floor accumulated against a previous
    /// incarnation numbers a dead sequence space; acking the new
    /// incarnation's traffic with it would discard messages the
    /// sender never saw.
    Hello {
        node: u64,
        schema_hash: u64,
        epoch: u64,
        recv_high: u64,
        your_epoch: Option<u64>,
    },
    /// Forwarded interest: "send me events matching this". With
    /// covering aggregation the profile is a covering representative of
    /// possibly many local subscriptions; weights stay local to the
    /// subscribing broker's cost model and never cross the wire.
    Subscribe { seq: u64, id: u64, profile: Profile },
    /// Retraction of a previously forwarded subscription.
    Unsubscribe { seq: u64, id: u64 },
    /// A block of matched events as sentinel-encoded index rows
    /// (schema order, [`IndexedEvent::MISSING`] for absent
    /// attributes). Row `i` carries link sequence `first_seq + i`.
    ///
    /// Multi-hop routing metadata rides alongside: `origin` is the
    /// broker that first published the rows, `ttl` the remaining hop
    /// budget, and `origin_seqs[i]` the row's position in the origin's
    /// publish order (per-row, because a transit broker forwards only
    /// the subset matching each peer's interest — origin sequences are
    /// not contiguous past the first hop).
    Batch {
        first_seq: u64,
        origin: u64,
        ttl: u32,
        width: u32,
        origin_seqs: Vec<u64>,
        rows: Vec<Vec<u64>>,
    },
    /// Cumulative acknowledgement: every sequence `<= high` is
    /// received and processed.
    Ack { high: u64 },
    /// Liveness probe for otherwise idle links.
    Heartbeat,
}

impl Msg {
    /// Sequence numbers this message consumes (0 for control traffic).
    pub(crate) fn seq_span(&self) -> u64 {
        match self {
            Msg::Subscribe { .. } | Msg::Unsubscribe { .. } => 1,
            Msg::Batch { rows, .. } => rows.len() as u64,
            _ => 0,
        }
    }

    /// Rewrites the sequence field (used when a queued message is
    /// assigned its final sequence at send time).
    pub(crate) fn set_first_seq(&mut self, s: u64) {
        match self {
            Msg::Subscribe { seq, .. } | Msg::Unsubscribe { seq, .. } => *seq = s,
            Msg::Batch { first_seq, .. } => *first_seq = s,
            _ => {}
        }
    }

    /// Encodes the message payload (unframed).
    ///
    /// # Errors
    ///
    /// Returns an [`ens_filter::PersistErrorKind::Unencodable`] error
    /// for a profile whose predicates have no wire encoding.
    pub(crate) fn encode(&self) -> Result<Vec<u8>, PersistError> {
        let mut w = ByteWriter::new();
        match self {
            Msg::Hello {
                node,
                schema_hash,
                epoch,
                recv_high,
                your_epoch,
            } => {
                w.u8(1);
                w.vu64(*node);
                w.u64(*schema_hash);
                w.vu64(*epoch);
                w.vu64(*recv_high);
                match your_epoch {
                    Some(e) => {
                        w.u8(1);
                        w.vu64(*e);
                    }
                    None => w.u8(0),
                }
            }
            Msg::Subscribe { seq, id, profile } => {
                w.u8(2);
                w.vu64(*seq);
                w.vu64(*id);
                encode_profile(&mut w, profile)?;
            }
            Msg::Unsubscribe { seq, id } => {
                w.u8(3);
                w.vu64(*seq);
                w.vu64(*id);
            }
            Msg::Batch {
                first_seq,
                origin,
                ttl,
                width,
                origin_seqs,
                rows,
            } => {
                w.u8(4);
                w.vu64(*first_seq);
                w.vu64(*origin);
                w.vu32(*ttl);
                w.vu64(rows.len() as u64);
                w.vu32(*width);
                debug_assert_eq!(origin_seqs.len(), rows.len());
                for (row, &oseq) in rows.iter().zip(origin_seqs) {
                    debug_assert_eq!(row.len(), *width as usize);
                    w.vu64(oseq);
                    for &idx in row {
                        // Missing → 0, index i → i+1: keeps the varint
                        // short for the common low indices and gives
                        // the sentinel the shortest encoding of all.
                        w.vu64(if idx == IndexedEvent::MISSING {
                            0
                        } else {
                            idx + 1
                        });
                    }
                }
            }
            Msg::Ack { high } => {
                w.u8(5);
                w.vu64(*high);
            }
            Msg::Heartbeat => w.u8(6),
        }
        Ok(w.into_bytes())
    }

    /// Decodes one payload produced by [`Msg::encode`].
    ///
    /// # Errors
    ///
    /// Returns a corruption error for unknown tags, truncated bodies,
    /// trailing garbage, or rows wider than sanity allows.
    pub(crate) fn decode(payload: &[u8], schema: &Schema) -> Result<Msg, PersistError> {
        let mut r = ByteReader::new(payload);
        let msg = match r.u8()? {
            1 => Msg::Hello {
                node: r.vu64()?,
                schema_hash: r.u64()?,
                epoch: r.vu64()?,
                recv_high: r.vu64()?,
                your_epoch: match r.u8()? {
                    0 => None,
                    1 => Some(r.vu64()?),
                    flag => {
                        return Err(PersistError::new(format!(
                            "bad hello epoch-presence flag {flag}"
                        )));
                    }
                },
            },
            2 => Msg::Subscribe {
                seq: r.vu64()?,
                id: r.vu64()?,
                profile: decode_profile(&mut r, schema)?,
            },
            3 => Msg::Unsubscribe {
                seq: r.vu64()?,
                id: r.vu64()?,
            },
            4 => {
                let first_seq = r.vu64()?;
                let origin = r.vu64()?;
                let ttl = r.vu32()?;
                let count = r.vu64()?;
                let width = r.vu32()?;
                // Every cell (and each row's origin-sequence prefix)
                // costs at least one varint byte on the wire, so a
                // genuine batch can never declare more of them than
                // payload bytes remain. Checking before the allocation
                // means a hostile CRC-valid 20-byte frame cannot
                // demand gigabytes; allocations stay proportional to
                // the bytes actually received.
                let cells = count.checked_mul(u64::from(width) + 1);
                if width as usize > u16::MAX as usize
                    || cells.is_none_or(|c| c > r.remaining() as u64)
                {
                    return Err(PersistError::new(format!(
                        "implausible batch shape: {count} rows x {width} columns in {} payload bytes",
                        r.remaining()
                    )));
                }
                let mut origin_seqs = Vec::with_capacity(count as usize);
                let mut rows = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    origin_seqs.push(r.vu64()?);
                    let mut row = Vec::with_capacity(width as usize);
                    for _ in 0..width {
                        let v = r.vu64()?;
                        row.push(if v == 0 { IndexedEvent::MISSING } else { v - 1 });
                    }
                    rows.push(row);
                }
                Msg::Batch {
                    first_seq,
                    origin,
                    ttl,
                    width,
                    origin_seqs,
                    rows,
                }
            }
            5 => Msg::Ack { high: r.vu64()? },
            6 => Msg::Heartbeat,
            tag => {
                return Err(PersistError::new(format!(
                    "unknown federation message tag {tag}"
                )));
            }
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ens_types::{Domain, Event, Predicate};

    fn schema() -> Schema {
        Schema::builder()
            .attribute("x", Domain::int(0, 99))
            .unwrap()
            .attribute("label", Domain::categorical(["a", "b"]).unwrap())
            .unwrap()
            .build()
    }

    fn round_trip(msg: &Msg, schema: &Schema) -> Msg {
        Msg::decode(&msg.encode().unwrap(), schema).unwrap()
    }

    #[test]
    fn all_message_kinds_round_trip() {
        let s = schema();
        let profile = Profile::builder(&s)
            .predicate("x", Predicate::ge(50))
            .unwrap()
            .build(ens_types::ProfileId::new(0));
        let msgs = [
            Msg::Hello {
                node: 7,
                schema_hash: schema_hash(&s),
                epoch: 3,
                recv_high: 12,
                your_epoch: Some(2),
            },
            Msg::Hello {
                node: 8,
                schema_hash: schema_hash(&s),
                epoch: 1,
                recv_high: 0,
                your_epoch: None,
            },
            Msg::Subscribe {
                seq: 4,
                id: 9,
                profile,
            },
            Msg::Unsubscribe { seq: 5, id: 9 },
            Msg::Batch {
                first_seq: 6,
                origin: 3,
                ttl: 2,
                width: 2,
                origin_seqs: vec![10, 14],
                rows: vec![vec![3, IndexedEvent::MISSING], vec![99, 1]],
            },
            Msg::Ack { high: 11 },
            Msg::Heartbeat,
        ];
        for m in msgs {
            assert_eq!(round_trip(&m, &s), m, "{m:?}");
        }
    }

    #[test]
    fn batch_rows_reconstruct_events() {
        let s = schema();
        let e = Event::builder(&s).value("x", 42).unwrap().build();
        let ix = IndexedEvent::resolve(&s, &e).unwrap();
        let m = Msg::Batch {
            first_seq: 1,
            origin: 1,
            ttl: 0,
            width: 2,
            origin_seqs: vec![1],
            rows: vec![ix.raw().to_vec()],
        };
        let Msg::Batch { rows, .. } = round_trip(&m, &s) else {
            panic!("wrong kind");
        };
        let mut back = IndexedEvent::new();
        back.copy_from_raw(&rows[0]);
        assert_eq!(back.to_event(&s).unwrap(), e);
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let a = frame(&Msg::Heartbeat.encode().unwrap());
        let b = frame(&Msg::Ack { high: 3 }.encode().unwrap());
        let stream: Vec<u8> = a.iter().chain(&b).copied().collect();
        let mut fb = FrameBuffer::new();
        // Feed one byte at a time: frames must reassemble across
        // arbitrary read boundaries.
        let mut got = Vec::new();
        for byte in stream {
            fb.extend(&[byte]);
            while let Some(p) = fb.next_frame().unwrap() {
                got.push(Msg::decode(&p, &schema()).unwrap());
            }
        }
        assert_eq!(got, vec![Msg::Heartbeat, Msg::Ack { high: 3 }]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn corrupt_frames_are_detected() {
        let mut bytes = frame(&Msg::Heartbeat.encode().unwrap());
        *bytes.last_mut().unwrap() ^= 0xFF;
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert!(fb.next_frame().is_err(), "CRC flip must be caught");

        let mut fb = FrameBuffer::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        fb.extend(&[0, 0, 0, 0]);
        assert!(fb.next_frame().is_err(), "oversized length must be caught");
    }

    #[test]
    fn hostile_batch_shapes_are_rejected_before_allocation() {
        let s = schema();
        // A ~16-byte frame claiming 67M rows of 2 columns: more
        // cells than payload bytes, so it must fail before any
        // row allocation happens.
        let mut w = ByteWriter::new();
        w.u8(4);
        w.vu64(1); // first_seq
        w.vu64(0); // origin
        w.vu32(4); // ttl
        w.vu64(1 << 26); // count
        w.vu32(2); // width
        assert!(Msg::decode(&w.into_bytes(), &s).is_err());
        // Width 0 must not make rows free either: the per-row
        // origin-sequence prefix still costs a byte each.
        let mut w = ByteWriter::new();
        w.u8(4);
        w.vu64(1);
        w.vu64(0);
        w.vu32(4);
        w.vu64(1 << 20);
        w.vu32(0);
        assert!(Msg::decode(&w.into_bytes(), &s).is_err());
    }

    #[test]
    fn schema_hash_discriminates() {
        let a = schema();
        let b = Schema::builder()
            .attribute("x", Domain::int(0, 100))
            .unwrap()
            .build();
        assert_ne!(schema_hash(&a), schema_hash(&b));
        assert_eq!(schema_hash(&a), schema_hash(&schema()));
    }
}
