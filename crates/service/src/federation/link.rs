//! Per-peer link state machine: reconnect, retransmit, dedup.
//!
//! A `PeerLink` owns one [`Transport`] and is *sans-I/O driven*:
//! all progress happens inside `PeerLink::poll`, which takes the
//! caller's clock in milliseconds. Nothing here sleeps, spawns, or
//! reads a wall clock — which is why the whole machine runs under the
//! deterministic fault-injection network in tests.
//!
//! ## Reliability model (Go-Back-N, at-least-once, receiver dedup)
//!
//! Outbound sequenced messages wait unsequenced in `pending` (the
//! bounded in-flight buffer the overflow policy governs), receive
//! their sequence numbers only at send time — so an overflow drop can
//! never tear a hole in the sequence space — and then sit in
//! `unacked` until the peer's cumulative ack covers them. A
//! retransmission timeout resends everything unacked, in order. The
//! receiver accepts a message only when it extends its contiguous
//! prefix (`recv_high`), delivering the non-overlapping tail of a
//! batch that straddles the boundary; anything older is a duplicate
//! (dropped, re-acked), anything beyond a gap (dropped, awaiting the
//! sender's retransmission).
//!
//! Acks are deliberately lazy: the ack for traffic received during
//! poll *k* is sent at the top of poll *k+1*. That gives the
//! application a full turn to record delivered events and receive
//! floors durably before the sender is allowed to forget them —
//! "log before ack" without the link knowing anything about logs.
//!
//! ## Liveness
//!
//! Heartbeats keep idle links measurably alive; silence beyond the
//! timeout resets the connection. Reconnects follow capped
//! exponential backoff with deterministic jitter, and the attempt
//! counter resets only when a connection reaches `Up` (a greeting
//! that dies half-way keeps escalating the delay).

use std::collections::VecDeque;
use std::sync::Arc;

use ens_types::{Profile, Schema};

use super::transport::Transport;
use super::wire::Msg;
use crate::channel::OverflowPolicy;

/// Tuning knobs for one peer link. The defaults suit LAN federation;
/// the tests shrink the timers to keep virtual runs short.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Send a heartbeat when nothing else was sent for this long.
    pub heartbeat_ms: u64,
    /// Declare the connection dead after this much inbound silence.
    pub timeout_ms: u64,
    /// First reconnect delay; doubles per failed attempt.
    pub backoff_base_ms: u64,
    /// Reconnect delay ceiling.
    pub backoff_max_ms: u64,
    /// Retransmit all unacked traffic after this long without an ack.
    pub rto_ms: u64,
    /// Maximum unacknowledged messages in flight (the Go-Back-N
    /// window, in messages).
    pub send_window: usize,
    /// Maximum messages queued awaiting a connection / window space;
    /// 0 means unbounded.
    pub pending_cap: usize,
    /// What to do when `pending_cap` is hit.
    pub overflow: OverflowPolicy,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            heartbeat_ms: 500,
            timeout_ms: 2_000,
            backoff_base_ms: 100,
            backoff_max_ms: 5_000,
            rto_ms: 400,
            send_window: 64,
            pending_cap: 4_096,
            overflow: OverflowPolicy::DropOldest,
        }
    }
}

/// Counters a link accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Sequenced messages sent for the first time.
    pub sent: u64,
    /// Messages resent by the retransmission timer.
    pub retransmits: u64,
    /// Sequence numbers dropped from the pending buffer by the
    /// overflow policy (rows count individually).
    pub overflow_dropped: u64,
    /// Inbound duplicates absorbed by the `recv_high` floor.
    pub duplicates: u64,
    /// Inbound messages dropped because they left a gap.
    pub gap_drops: u64,
    /// Connection resets (corruption, EOF, timeouts).
    pub resets: u64,
    /// Messages that could not be encoded for the wire and were
    /// abandoned (unencodable predicate variants).
    pub unencodable: u64,
}

/// What happened on a link during a poll, reported upward to the
/// federation layer.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LinkEvent {
    /// The greeting completed; the link is `Up`. `epoch_changed` is
    /// true when the peer presented a different epoch than the last
    /// connection — it restarted, so forwarded state must be re-sent.
    Established { peer: u64, epoch_changed: bool },
    /// The peer runs a different schema; the link is permanently
    /// failed (no retries — this is an operator error).
    SchemaMismatch { peer: u64, theirs: u64 },
    /// The peer forwarded a subscription. `epoch` is the peer
    /// incarnation it arrived from, so the federation layer can prune
    /// interest inherited from earlier incarnations the moment the
    /// new one announces its own.
    Subscribe {
        peer: u64,
        id: u64,
        profile: Profile,
        epoch: u64,
    },
    /// The peer retracted a forwarded subscription.
    Unsubscribe { peer: u64, id: u64 },
    /// A batch of event rows arrived. The first `skip` rows were
    /// already delivered on a previous connection (overlap with the
    /// receive floor) and must not be re-delivered; row `i` carries
    /// link sequence `first_seq + i`. `origin`, `ttl` and the per-row
    /// `origin_seqs` carry the multi-hop routing metadata through
    /// unchanged.
    Rows {
        peer: u64,
        first_seq: u64,
        origin: u64,
        ttl: u32,
        origin_seqs: Vec<u64>,
        rows: Vec<Vec<u64>>,
        skip: usize,
    },
    /// The connection dropped (reconnect is scheduled).
    Down { peer: u64 },
}

/// Connection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Disconnected; retry at `next_attempt_ms`.
    Down { next_attempt_ms: u64, attempt: u32 },
    /// Transport connected, our `Hello` sent, waiting for theirs.
    Greeting,
    /// Greeting exchanged; traffic flows.
    Up,
    /// Permanently failed (schema mismatch or overflow-disconnect).
    Failed,
}

/// A sequenced message awaiting acknowledgement.
#[derive(Debug)]
struct SentMsg {
    end_seq: u64,
    payload: Vec<u8>,
    sent_at_ms: u64,
}

/// One reliable, self-healing connection to a federation peer.
pub(crate) struct PeerLink {
    peer: u64,
    local: u64,
    schema: Arc<Schema>,
    schema_hash: u64,
    epoch: u64,
    config: LinkConfig,
    transport: Box<dyn Transport>,
    phase: Phase,
    /// Jitter RNG — deterministic per (local, peer) pair.
    jitter: u64,
    // Send side.
    next_seq: u64,
    pending: VecDeque<Msg>,
    unacked: VecDeque<SentMsg>,
    // Receive side.
    recv_high: u64,
    last_acked_sent: u64,
    ack_due: bool,
    remote_epoch: Option<u64>,
    // Liveness clocks.
    last_rx_ms: u64,
    last_tx_ms: u64,
    stats: LinkStats,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PeerLink {
    /// Creates a link that will start connecting on the first poll.
    /// `recv_floor` restores the receiver's dedup floor after a
    /// restart: rows at or below it are duplicates by definition.
    pub(crate) fn new(
        local: u64,
        peer: u64,
        schema: Arc<Schema>,
        epoch: u64,
        recv_floor: u64,
        transport: Box<dyn Transport>,
        config: LinkConfig,
    ) -> Self {
        let schema_hash = super::wire::schema_hash(&schema);
        PeerLink {
            peer,
            local,
            schema,
            schema_hash,
            epoch,
            config,
            transport,
            phase: Phase::Down {
                next_attempt_ms: 0,
                attempt: 0,
            },
            jitter: local.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(peer),
            next_seq: 1,
            pending: VecDeque::new(),
            unacked: VecDeque::new(),
            recv_high: recv_floor,
            last_acked_sent: recv_floor,
            ack_due: false,
            remote_epoch: None,
            last_rx_ms: 0,
            last_tx_ms: 0,
            stats: LinkStats::default(),
        }
    }

    pub(crate) fn peer(&self) -> u64 {
        self.peer
    }

    /// Highest contiguous sequence received from the peer — the
    /// receive floor the application persists.
    pub(crate) fn recv_high(&self) -> u64 {
        self.recv_high
    }

    pub(crate) fn is_up(&self) -> bool {
        self.phase == Phase::Up
    }

    pub(crate) fn is_failed(&self) -> bool {
        self.phase == Phase::Failed
    }

    pub(crate) fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Messages queued or in flight (pending + unacked).
    pub(crate) fn backlog(&self) -> usize {
        self.pending.len() + self.unacked.len()
    }

    /// Updates the epoch announced in future greetings (a restart
    /// bumps it so peers re-forward their state).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Queues a sequenced message, applying the pending-buffer
    /// overflow policy. Returns whether the message was accepted.
    pub(crate) fn enqueue(&mut self, msg: Msg) -> bool {
        if self.phase == Phase::Failed {
            self.stats.overflow_dropped += msg.seq_span();
            return false;
        }
        if self.config.pending_cap > 0 && self.pending.len() >= self.config.pending_cap {
            match self.config.overflow {
                OverflowPolicy::DropOldest => {
                    if let Some(old) = self.pending.pop_front() {
                        self.stats.overflow_dropped += old.seq_span();
                    }
                }
                OverflowPolicy::DropNewest => {
                    self.stats.overflow_dropped += msg.seq_span();
                    return false;
                }
                OverflowPolicy::Disconnect => {
                    // The operator asked for failure over loss: stop
                    // the link entirely and surface it via
                    // `is_failed` / metrics.
                    self.stats.overflow_dropped += msg.seq_span();
                    self.phase = Phase::Failed;
                    self.transport.close();
                    self.pending.clear();
                    return false;
                }
            }
        }
        self.pending.push_back(msg);
        true
    }

    fn backoff_ms(&mut self, attempt: u32) -> u64 {
        let base = self.config.backoff_base_ms.max(1);
        let exp = base.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let capped = exp.min(self.config.backoff_max_ms);
        capped + splitmix64(&mut self.jitter) % (base / 4 + 1)
    }

    fn hello(&self) -> Msg {
        Msg::Hello {
            node: self.local,
            schema_hash: self.schema_hash,
            epoch: self.epoch,
            recv_high: self.recv_high,
            // The incarnation our floor was accumulated against, so
            // the peer can tell whether the floor doubles as an ack
            // for *its current* sequence space.
            your_epoch: self.remote_epoch,
        }
    }

    /// Sends a payload, resetting the link on failure. Returns
    /// whether the send succeeded.
    fn send_or_reset(&mut self, payload: &[u8], now_ms: u64, events: &mut Vec<LinkEvent>) -> bool {
        match self.transport.send(payload) {
            Ok(()) => {
                self.last_tx_ms = now_ms;
                true
            }
            Err(_) => {
                self.reset(now_ms, events);
                false
            }
        }
    }

    fn reset(&mut self, now_ms: u64, events: &mut Vec<LinkEvent>) {
        if self.phase == Phase::Failed {
            return;
        }
        let was_live = matches!(self.phase, Phase::Up | Phase::Greeting);
        self.transport.close();
        self.stats.resets += 1;
        let delay = self.backoff_ms(0);
        self.phase = Phase::Down {
            next_attempt_ms: now_ms + delay,
            attempt: 1,
        };
        if was_live {
            events.push(LinkEvent::Down { peer: self.peer });
        }
    }

    /// Cumulative ack: trims every unacked message ending at or
    /// below `high`.
    fn ack_up_to(&mut self, high: u64) {
        while let Some(front) = self.unacked.front() {
            if front.end_seq <= high {
                self.unacked.pop_front();
            } else {
                break;
            }
        }
    }

    fn on_msg(&mut self, msg: Msg, now_ms: u64, events: &mut Vec<LinkEvent>) {
        self.last_rx_ms = now_ms;
        match msg {
            Msg::Hello {
                schema_hash,
                epoch,
                recv_high,
                your_epoch,
                ..
            } => {
                if schema_hash != self.schema_hash {
                    events.push(LinkEvent::SchemaMismatch {
                        peer: self.peer,
                        theirs: schema_hash,
                    });
                    // Leave the transport open: our own `Hello` may
                    // still be in flight, and tearing the connection
                    // down before the peer reads it would leave them
                    // retrying a link we already know is hopeless.
                    // `Failed` never polls, so the socket goes quiet
                    // and the peer reaches the same verdict from our
                    // `Hello`.
                    self.phase = Phase::Failed;
                    return;
                }
                // The peer's receive floor doubles as a cumulative
                // ack — but only when it was accumulated against
                // *this* incarnation. After a restart a surviving
                // peer's first Hello still carries the previous
                // incarnation's floor (it has not seen our new epoch
                // yet); honoring it would trim fresh unacked traffic
                // the peer has never received, and once the peer
                // resets its floor to 0 for the new epoch those
                // messages would be waited on forever. A stale floor
                // is simply ignored: retransmission plus the peer's
                // (soon reset) dedup floor cover the overlap.
                if your_epoch == Some(self.epoch) {
                    self.ack_up_to(recv_high);
                }
                let epoch_changed = self.remote_epoch.is_some_and(|e| e != epoch);
                if epoch_changed {
                    // A new incarnation numbers its outbound traffic
                    // from scratch; keeping the old floor would shadow
                    // everything it sends as "duplicate".
                    self.recv_high = 0;
                    self.last_acked_sent = 0;
                }
                self.remote_epoch = Some(epoch);
                self.phase = Phase::Up;
                // Make sure the peer learns our floor promptly even
                // if no traffic follows.
                self.ack_due = true;
                events.push(LinkEvent::Established {
                    peer: self.peer,
                    epoch_changed,
                });
            }
            Msg::Ack { high } => self.ack_up_to(high),
            Msg::Heartbeat => {}
            Msg::Subscribe { seq, id, profile } => {
                if self.accept_span(seq, 1) == Some(0) {
                    events.push(LinkEvent::Subscribe {
                        peer: self.peer,
                        id,
                        profile,
                        epoch: self.remote_epoch.unwrap_or(0),
                    });
                }
            }
            Msg::Unsubscribe { seq, id } => {
                if self.accept_span(seq, 1) == Some(0) {
                    events.push(LinkEvent::Unsubscribe {
                        peer: self.peer,
                        id,
                    });
                }
            }
            Msg::Batch {
                first_seq,
                origin,
                ttl,
                origin_seqs,
                rows,
                ..
            } => {
                let span = rows.len() as u64;
                if span == 0 || origin_seqs.len() != rows.len() {
                    return;
                }
                if let Some(skip) = self.accept_span(first_seq, span) {
                    events.push(LinkEvent::Rows {
                        peer: self.peer,
                        first_seq,
                        origin,
                        ttl,
                        origin_seqs,
                        rows,
                        skip,
                    });
                }
            }
        }
    }

    /// Sequencing acceptance: `Some(skip)` when the span extends the
    /// contiguous prefix (deliver from `skip` onward), `None` for
    /// duplicates and gaps.
    fn accept_span(&mut self, first: u64, span: u64) -> Option<usize> {
        self.ack_due = true;
        // Callers guarantee span >= 1; the checked add guards a
        // hostile `first_seq` near u64::MAX from wrapping (debug
        // panic) — such a span can only be garbage, so gap-drop it.
        let Some(end) = first.checked_add(span - 1) else {
            self.stats.gap_drops += span;
            return None;
        };
        if end <= self.recv_high {
            self.stats.duplicates += span;
            return None;
        }
        if first > self.recv_high.saturating_add(1) {
            self.stats.gap_drops += span;
            return None;
        }
        let skip = (self.recv_high + 1 - first) as usize;
        self.stats.duplicates += skip as u64;
        self.recv_high = end;
        Some(skip)
    }

    /// Drives the link: reconnects, greets, acks, drains inbound
    /// traffic into `events`, flushes outbound traffic, retransmits,
    /// heartbeats, and times out — in that order, using only
    /// `now_ms` for time.
    pub(crate) fn poll(&mut self, now_ms: u64, events: &mut Vec<LinkEvent>) {
        match self.phase {
            Phase::Failed => return,
            Phase::Down {
                next_attempt_ms,
                attempt,
            } => {
                if now_ms < next_attempt_ms {
                    return;
                }
                if self.transport.connect(now_ms) {
                    let hello = self.hello().encode().expect("hello is always encodable");
                    self.phase = Phase::Greeting;
                    self.last_rx_ms = now_ms;
                    if !self.send_or_reset(&hello, now_ms, events) {
                        return;
                    }
                } else {
                    let delay = self.backoff_ms(attempt);
                    self.phase = Phase::Down {
                        next_attempt_ms: now_ms + delay,
                        attempt: attempt.saturating_add(1),
                    };
                    return;
                }
            }
            Phase::Greeting | Phase::Up => {}
        }

        // Lazy ack first: acknowledge what was received *before* this
        // poll, so the application has already seen (and could log)
        // those deliveries and floors.
        if self.phase == Phase::Up && (self.ack_due || self.recv_high != self.last_acked_sent) {
            let ack = Msg::Ack {
                high: self.recv_high,
            }
            .encode()
            .expect("ack is always encodable");
            let high = self.recv_high;
            if !self.send_or_reset(&ack, now_ms, events) {
                return;
            }
            self.last_acked_sent = high;
            self.ack_due = false;
        }

        // Drain inbound traffic.
        loop {
            match self.transport.recv() {
                Ok(Some(payload)) => match Msg::decode(&payload, &self.schema) {
                    Ok(msg) => {
                        self.on_msg(msg, now_ms, events);
                        if matches!(self.phase, Phase::Failed | Phase::Down { .. }) {
                            return;
                        }
                    }
                    Err(_) => {
                        // Undecodable payload on a CRC-clean frame:
                        // protocol corruption; drop the connection.
                        self.reset(now_ms, events);
                        return;
                    }
                },
                Ok(None) => break,
                Err(_) => {
                    self.reset(now_ms, events);
                    return;
                }
            }
        }

        if self.phase == Phase::Up {
            // Flush pending messages into the Go-Back-N window,
            // assigning sequence numbers at the moment of first send.
            while !self.pending.is_empty() && self.unacked.len() < self.config.send_window {
                let mut msg = self.pending.pop_front().expect("checked non-empty");
                let span = msg.seq_span();
                msg.set_first_seq(self.next_seq);
                let payload = match msg.encode() {
                    Ok(p) => p,
                    Err(_) => {
                        // Unencodable now means unencodable forever;
                        // abandoning it keeps the sequence space
                        // hole-free because no sequence was consumed.
                        self.stats.unencodable += 1;
                        continue;
                    }
                };
                let first_seq = self.next_seq;
                self.next_seq += span;
                // Window the message before attempting the send: if
                // the transport dies mid-send, retransmission on the
                // next connection still covers it.
                self.unacked.push_back(SentMsg {
                    end_seq: first_seq + span - 1,
                    payload: payload.clone(),
                    sent_at_ms: now_ms,
                });
                self.stats.sent += 1;
                if !self.send_or_reset(&payload, now_ms, events) {
                    return;
                }
            }

            // Go-Back-N retransmission: the oldest unacked message
            // going stale resends the whole window, in order.
            let stale = self
                .unacked
                .front()
                .is_some_and(|f| now_ms.saturating_sub(f.sent_at_ms) >= self.config.rto_ms);
            if stale {
                let payloads: Vec<Vec<u8>> =
                    self.unacked.iter().map(|m| m.payload.clone()).collect();
                for m in &mut self.unacked {
                    m.sent_at_ms = now_ms;
                }
                self.stats.retransmits += payloads.len() as u64;
                for p in payloads {
                    if !self.send_or_reset(&p, now_ms, events) {
                        return;
                    }
                }
            }

            // Keep an otherwise idle link measurably alive.
            if now_ms.saturating_sub(self.last_tx_ms) >= self.config.heartbeat_ms {
                let hb = Msg::Heartbeat
                    .encode()
                    .expect("heartbeat is trivially encodable");
                if !self.send_or_reset(&hb, now_ms, events) {
                    return;
                }
            }
        }

        // Inbound silence beyond the timeout — covering both a dead
        // peer while Up and a greeting that never completes.
        if matches!(self.phase, Phase::Up | Phase::Greeting)
            && now_ms.saturating_sub(self.last_rx_ms) >= self.config.timeout_ms
        {
            self.reset(now_ms, events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::sim::{FaultPlan, SimNet, SimTransport};
    use crate::federation::transport::TransportError;
    use ens_types::{Domain, Event, IndexedEvent, Predicate, ProfileId};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .attribute("x", Domain::int(0, 999))
                .unwrap()
                .build(),
        )
    }

    fn fast_config() -> LinkConfig {
        LinkConfig {
            heartbeat_ms: 50,
            timeout_ms: 300,
            backoff_base_ms: 20,
            backoff_max_ms: 200,
            rto_ms: 40,
            send_window: 8,
            pending_cap: 0,
            overflow: OverflowPolicy::DropOldest,
        }
    }

    fn link_pair(net: &SimNet, s: &Arc<Schema>) -> (PeerLink, PeerLink) {
        let a = PeerLink::new(
            1,
            2,
            Arc::clone(s),
            1,
            0,
            Box::new(net.transport(1, 2)),
            fast_config(),
        );
        let b = PeerLink::new(
            2,
            1,
            Arc::clone(s),
            1,
            0,
            Box::new(net.transport(2, 1)),
            fast_config(),
        );
        (a, b)
    }

    fn pump(net: &SimNet, links: &mut [&mut PeerLink], steps: u32) -> Vec<LinkEvent> {
        let mut events = Vec::new();
        for _ in 0..steps {
            let now = net.now_ms();
            for l in links.iter_mut() {
                l.poll(now, &mut events);
            }
            net.advance(10);
        }
        events
    }

    fn row(s: &Schema, x: i64) -> Vec<u64> {
        let e = Event::builder(s).value("x", x).unwrap().build();
        IndexedEvent::resolve(s, &e).unwrap().raw().to_vec()
    }

    /// A single-hop batch as the federation layer would emit it (the
    /// origin-sequence values are immaterial to link-level tests).
    fn batch(rows: Vec<Vec<u64>>) -> Msg {
        let origin_seqs = (1..=rows.len() as u64).collect();
        Msg::Batch {
            first_seq: 0,
            origin: 1,
            ttl: 0,
            width: 1,
            origin_seqs,
            rows,
        }
    }

    fn delivered_xs(events: &[LinkEvent]) -> Vec<u64> {
        events
            .iter()
            .filter_map(|e| match e {
                LinkEvent::Rows { rows, skip, .. } => {
                    Some(rows[*skip..].iter().map(|r| r[0]).collect::<Vec<_>>())
                }
                _ => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn links_greet_and_exchange_batches() {
        let s = schema();
        let net = SimNet::new(7);
        let (mut a, mut b) = link_pair(&net, &s);
        let events = pump(&net, &mut [&mut a, &mut b], 3);
        assert!(a.is_up() && b.is_up());
        assert!(events
            .iter()
            .any(|e| matches!(e, LinkEvent::Established { peer: 1, .. })));

        a.enqueue(batch(vec![row(&s, 5), row(&s, 6)]));
        let events = pump(&net, &mut [&mut a, &mut b], 3);
        assert_eq!(delivered_xs(&events), vec![5, 6]);
        assert_eq!(b.recv_high(), 2);
    }

    #[test]
    fn lossy_net_delivers_exactly_once_in_order() {
        let s = schema();
        let net = SimNet::new(99);
        net.set_plan(FaultPlan {
            drop_p: 0.25,
            dup_p: 0.2,
            reorder_p: 0.2,
            delay_lo_ms: 0,
            delay_hi_ms: 30,
            ..FaultPlan::default()
        });
        let (mut a, mut b) = link_pair(&net, &s);
        let mut all = pump(&net, &mut [&mut a, &mut b], 10);
        for group in 0..20 {
            a.enqueue(batch((0..5).map(|i| row(&s, group * 5 + i)).collect()));
            all.extend(pump(&net, &mut [&mut a, &mut b], 5));
        }
        all.extend(pump(&net, &mut [&mut a, &mut b], 100));
        let got = delivered_xs(&all);
        let want: Vec<u64> = (0..100).collect();
        assert_eq!(got, want, "loss/dup/reorder must be fully masked");
        assert!(a.stats().retransmits > 0, "drops must have forced resends");
        assert!(b.stats().duplicates > 0, "dups must have been absorbed");
    }

    #[test]
    fn subscribe_forwarding_survives_faults() {
        let s = schema();
        let net = SimNet::new(11);
        net.set_plan(FaultPlan {
            drop_p: 0.3,
            torn_p: 0.05,
            ..FaultPlan::default()
        });
        let (mut a, mut b) = link_pair(&net, &s);
        let profile = Profile::builder(&s)
            .predicate("x", Predicate::ge(500))
            .unwrap()
            .build(ProfileId::new(0));
        a.enqueue(Msg::Subscribe {
            seq: 0,
            id: 42,
            profile: profile.clone(),
        });
        a.enqueue(Msg::Unsubscribe { seq: 0, id: 42 });
        let events = pump(&net, &mut [&mut a, &mut b], 120);
        let subs: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, LinkEvent::Subscribe { id: 42, .. }))
            .collect();
        let unsubs: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, LinkEvent::Unsubscribe { id: 42, .. }))
            .collect();
        assert_eq!(subs.len(), 1, "subscribe delivered exactly once");
        assert_eq!(unsubs.len(), 1, "unsubscribe delivered exactly once");
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let s = schema();
        let net = SimNet::new(5);
        net.partition(1, 2);
        let mut a = PeerLink::new(
            1,
            2,
            Arc::clone(&s),
            1,
            0,
            Box::new(net.transport(1, 2)),
            fast_config(),
        );
        let mut events = Vec::new();
        // Poll on a 1 ms grid so attempt times are near-exact.
        for _ in 0..3_000 {
            a.poll(net.now_ms(), &mut events);
            net.advance(1);
        }
        let attempts = net.connect_attempts(1, 2);
        assert!(
            attempts.len() >= 8,
            "expected many attempts, got {attempts:?}"
        );
        let cfg = fast_config();
        for (k, pair) in attempts.windows(2).enumerate() {
            let gap = pair[1] - pair[0];
            let expected = cfg
                .backoff_base_ms
                .saturating_mul(1 << k.min(16))
                .min(cfg.backoff_max_ms);
            let jitter_max = cfg.backoff_base_ms / 4;
            assert!(
                gap >= expected && gap <= expected + jitter_max + 1,
                "attempt {k}: gap {gap} outside [{expected}, {}]",
                expected + jitter_max + 1
            );
        }
        // The cap must actually engage.
        let last_gap = attempts[attempts.len() - 1] - attempts[attempts.len() - 2];
        assert!(last_gap <= cfg.backoff_max_ms + cfg.backoff_base_ms / 4 + 1);
        assert!(last_gap >= cfg.backoff_max_ms);
    }

    #[test]
    fn reconnect_after_partition_resumes_without_loss_or_dup() {
        let s = schema();
        let net = SimNet::new(21);
        let (mut a, mut b) = link_pair(&net, &s);
        let mut all = pump(&net, &mut [&mut a, &mut b], 5);
        a.enqueue(batch(vec![row(&s, 1), row(&s, 2)]));
        all.extend(pump(&net, &mut [&mut a, &mut b], 5));
        net.partition(1, 2);
        // Traffic queued during the partition waits in pending.
        a.enqueue(batch(vec![row(&s, 3)]));
        all.extend(pump(&net, &mut [&mut a, &mut b], 60));
        assert!(!a.is_up() && !b.is_up(), "timeout must drop both sides");
        net.heal(1, 2);
        all.extend(pump(&net, &mut [&mut a, &mut b], 120));
        assert!(a.is_up() && b.is_up());
        assert_eq!(delivered_xs(&all), vec![1, 2, 3]);
        assert!(
            all.iter().any(|e| matches!(e, LinkEvent::Down { .. })),
            "partition must surface as Down"
        );
    }

    #[test]
    fn receive_floor_dedupes_after_receiver_restart() {
        let s = schema();
        let net = SimNet::new(31);
        let (mut a, mut b) = link_pair(&net, &s);
        let mut all = pump(&net, &mut [&mut a, &mut b], 3);
        a.enqueue(batch(vec![row(&s, 1), row(&s, 2), row(&s, 3)]));
        all.extend(pump(&net, &mut [&mut a, &mut b], 5));
        assert_eq!(b.recv_high(), 3);
        // "Crash" b and restart it with its persisted floor; the
        // sender keeps its link state and simply reconnects.
        let floor = b.recv_high();
        drop(b);
        net.drop_link(1, 2);
        let mut b2 = PeerLink::new(
            2,
            1,
            Arc::clone(&s),
            2, // restarted process announces a new epoch
            floor,
            Box::new(net.transport(2, 1)),
            fast_config(),
        );
        a.enqueue(batch(vec![row(&s, 4)]));
        let all2 = pump(&net, &mut [&mut a, &mut b2], 120);
        assert_eq!(delivered_xs(&all2), vec![4], "floor must absorb 1..=3");
        assert!(
            all2.iter().any(|e| matches!(
                e,
                LinkEvent::Established {
                    peer: 2,
                    epoch_changed: true
                }
            )),
            "sender must observe the epoch change: {all2:?}"
        );
    }

    /// Delegates to a [`SimTransport`] but swallows the first
    /// `drops` sends — used to lose specific frames (the reconnect
    /// `Hello`s) deterministically.
    struct DropFirstSends {
        inner: SimTransport,
        drops: usize,
    }

    impl Transport for DropFirstSends {
        fn connect(&mut self, now_ms: u64) -> bool {
            self.inner.connect(now_ms)
        }
        fn is_connected(&self) -> bool {
            self.inner.is_connected()
        }
        fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
            if self.drops > 0 {
                self.drops -= 1;
                return Ok(());
            }
            self.inner.send(payload)
        }
        fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
            self.inner.recv()
        }
        fn close(&mut self) {
            self.inner.close();
        }
    }

    #[test]
    fn stale_hello_floor_from_previous_incarnation_is_not_an_ack() {
        let s = schema();
        let net = SimNet::new(61);
        let (mut a, mut b) = link_pair(&net, &s);
        let mut all = pump(&net, &mut [&mut a, &mut b], 3);
        a.enqueue(batch(vec![row(&s, 1), row(&s, 2), row(&s, 3)]));
        all.extend(pump(&net, &mut [&mut a, &mut b], 5));
        assert_eq!(b.recv_high(), 3);

        // Node 1 crashes and restarts with a new epoch and fresh
        // link state (sequences start over at 1); its first TWO
        // Hellos are lost. The survivor times out, reconnects, and
        // its Hello — still carrying the OLD incarnation's floor (3)
        // and epoch — brings the restarted link Up, which flushes
        // new seq 1..=3 into the unacked window. The survivor, still
        // greeting (it never saw a Hello), stays silent until the
        // restarted side times out and both reconnect; the
        // survivor's NEXT Hello repeats the stale floor while those
        // messages sit unacked. Treating that floor as an ack would
        // trim them, and once the survivor resets its own floor to 0
        // for the new epoch the link would wait on seq 1 forever.
        drop(a);
        net.drop_link(1, 2);
        let mut a2 = PeerLink::new(
            1,
            2,
            Arc::clone(&s),
            2, // restarted process announces a new epoch
            0,
            Box::new(DropFirstSends {
                inner: net.transport(1, 2),
                drops: 2,
            }),
            fast_config(),
        );
        a2.enqueue(batch(vec![row(&s, 7), row(&s, 8), row(&s, 9)]));
        let all2 = pump(&net, &mut [&mut a2, &mut b], 300);
        assert_eq!(
            delivered_xs(&all2),
            vec![7, 8, 9],
            "the new incarnation's traffic must survive the stale floor"
        );
    }

    #[test]
    fn pending_overflow_policies_apply() {
        let s = schema();
        let net = SimNet::new(41);
        let mut cfg = fast_config();
        cfg.pending_cap = 2;
        cfg.overflow = OverflowPolicy::DropNewest;
        let mut a = PeerLink::new(
            1,
            2,
            Arc::clone(&s),
            1,
            0,
            Box::new(net.transport(1, 2)),
            cfg,
        );
        // Not yet connected: everything stays pending.
        assert!(a.enqueue(Msg::Unsubscribe { seq: 0, id: 1 }));
        assert!(a.enqueue(Msg::Unsubscribe { seq: 0, id: 2 }));
        assert!(!a.enqueue(Msg::Unsubscribe { seq: 0, id: 3 }));
        assert_eq!(a.stats().overflow_dropped, 1);

        cfg = fast_config();
        cfg.pending_cap = 1;
        cfg.overflow = OverflowPolicy::Disconnect;
        let mut c = PeerLink::new(
            3,
            4,
            Arc::clone(&s),
            1,
            0,
            Box::new(net.transport(3, 4)),
            cfg,
        );
        assert!(c.enqueue(Msg::Unsubscribe { seq: 0, id: 1 }));
        assert!(!c.enqueue(Msg::Unsubscribe { seq: 0, id: 2 }));
        assert!(c.is_failed(), "Disconnect overflow fails the link");
    }

    #[test]
    fn schema_mismatch_permanently_fails_the_link() {
        let s = schema();
        let other = Arc::new(
            Schema::builder()
                .attribute("x", Domain::int(0, 10))
                .unwrap()
                .build(),
        );
        let net = SimNet::new(51);
        let mut a = PeerLink::new(
            1,
            2,
            Arc::clone(&s),
            1,
            0,
            Box::new(net.transport(1, 2)),
            fast_config(),
        );
        let mut b = PeerLink::new(
            2,
            1,
            other,
            1,
            0,
            Box::new(net.transport(2, 1)),
            fast_config(),
        );
        let events = pump(&net, &mut [&mut a, &mut b], 10);
        assert!(events
            .iter()
            .any(|e| matches!(e, LinkEvent::SchemaMismatch { .. })));
        assert!(a.is_failed() || b.is_failed());
        let before = net.connect_attempts(1, 2).len();
        pump(&net, &mut [&mut a, &mut b], 50);
        let after = net.connect_attempts(1, 2).len();
        assert_eq!(before, after, "failed links must not keep reconnecting");
    }
}
