//! Deterministic fault-injection network for federation tests.
//!
//! [`SimNet`] is an in-memory "internet" with a virtual clock and a
//! seeded RNG. [`SimTransport`]s attached to it behave like the TCP
//! transport — framed payloads, connection state, corruption errors —
//! but every fault is injected from a [`FaultPlan`] and every run with
//! the same seed replays identically:
//!
//! - **drop**: a sent frame silently vanishes (the link's
//!   retransmission timer must recover it),
//! - **duplicate**: a frame is delivered twice (receiver dedup must
//!   absorb it),
//! - **delay / reorder**: frames arrive late and out of order,
//! - **torn write**: a frame is truncated mid-bytes, surfacing as a
//!   CRC/length corruption exactly like a half-flushed TCP segment,
//! - **partition**: a node pair stops exchanging traffic entirely and
//!   existing connections break (both sides observe disconnects and
//!   enter reconnect backoff — which the tests assert is capped
//!   exponential, via the [`SimNet::connect_attempts`] log).
//!
//! Time only moves when the test calls [`SimNet::advance`], so
//! timeout and backoff behaviour is asserted against exact virtual
//! milliseconds, not wall-clock sleeps.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};

use super::transport::{Transport, TransportError};
use super::wire::{frame, FrameBuffer, FRAME_HEADER};

/// Probabilities and delay bounds for injected faults. All
/// probabilities are independent per frame; the default plan is a
/// perfect network.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Probability a frame is silently dropped.
    pub drop_p: f64,
    /// Probability a frame is delivered twice.
    pub dup_p: f64,
    /// Probability a frame gets an extra delay (reordering it behind
    /// later traffic).
    pub reorder_p: f64,
    /// Probability a frame is truncated (torn write → CRC failure →
    /// receiver resets the connection).
    pub torn_p: f64,
    /// Uniform per-frame latency lower bound, virtual ms.
    pub delay_lo_ms: u64,
    /// Uniform per-frame latency upper bound, virtual ms.
    pub delay_hi_ms: u64,
}

/// In-flight frames for one ordered (from, to) direction, keyed by
/// (deliver_at, order) so reordering falls out of the keys.
type FlightQueue = BTreeMap<(u64, u64), Vec<u8>>;

#[derive(Debug, Default)]
struct SimState {
    now_ms: u64,
    rng: u64,
    plan: FaultPlan,
    /// Unordered pairs currently connected (a connect from either
    /// side establishes the pair, mirroring TCP accept).
    conns: HashSet<(u64, u64)>,
    /// Unordered pairs currently partitioned.
    partitions: HashSet<(u64, u64)>,
    /// In-flight frames per ordered (from, to) pair.
    queues: HashMap<(u64, u64), FlightQueue>,
    order: u64,
    /// Every connect attempt: (virtual time, from, to). The backoff
    /// tests assert capped exponential gaps on this log.
    attempts: Vec<(u64, u64, u64)>,
}

fn pair(a: u64, b: u64) -> (u64, u64) {
    (a.min(b), a.max(b))
}

/// splitmix64 — tiny, seedable, good enough for fault dice.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimState {
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        (splitmix64(&mut self.rng) as f64 / u64::MAX as f64) < p
    }

    fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + splitmix64(&mut self.rng) % (hi - lo + 1)
    }

    fn connected(&self, a: u64, b: u64) -> bool {
        self.conns.contains(&pair(a, b)) && !self.partitions.contains(&pair(a, b))
    }

    fn sever(&mut self, a: u64, b: u64) {
        self.conns.remove(&pair(a, b));
        self.queues.remove(&(a, b));
        self.queues.remove(&(b, a));
    }
}

/// The shared deterministic network. Cheap to clone (handle to the
/// same state).
#[derive(Debug, Clone)]
pub struct SimNet {
    state: Arc<Mutex<SimState>>,
}

impl SimNet {
    /// A perfect network with a seeded RNG at virtual time 0.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimNet {
            state: Arc::new(Mutex::new(SimState {
                rng: seed ^ 0x5DEE_CE66_D1CE_CAFE,
                ..SimState::default()
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Installs a fault plan (applies to frames sent from now on).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.lock().plan = plan;
    }

    /// Advances the virtual clock.
    pub fn advance(&self, ms: u64) {
        self.lock().now_ms += ms;
    }

    /// Current virtual time.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.lock().now_ms
    }

    /// A transport endpoint for node `local` talking to node `peer`.
    #[must_use]
    pub fn transport(&self, local: u64, peer: u64) -> SimTransport {
        SimTransport {
            net: self.clone(),
            local,
            peer,
            rbuf: FrameBuffer::new(),
        }
    }

    /// Partitions `a` and `b`: existing connections break, traffic in
    /// flight is lost, reconnects fail until [`SimNet::heal`].
    pub fn partition(&self, a: u64, b: u64) {
        let mut s = self.lock();
        s.partitions.insert(pair(a, b));
        s.sever(a, b);
    }

    /// Heals a partition (reconnects may then succeed).
    pub fn heal(&self, a: u64, b: u64) {
        self.lock().partitions.remove(&pair(a, b));
    }

    /// Forcibly breaks the connection between `a` and `b` (like a
    /// peer crash / TCP reset) without installing a partition.
    pub fn drop_link(&self, a: u64, b: u64) {
        self.lock().sever(a, b);
    }

    /// Virtual times at which `from` attempted to connect to `to` —
    /// the raw data behind the capped-exponential-backoff assertions.
    #[must_use]
    pub fn connect_attempts(&self, from: u64, to: u64) -> Vec<u64> {
        self.lock()
            .attempts
            .iter()
            .filter(|(_, f, t)| *f == from && *t == to)
            .map(|(at, _, _)| *at)
            .collect()
    }
}

/// [`Transport`] endpoint on a [`SimNet`].
#[derive(Debug)]
pub struct SimTransport {
    net: SimNet,
    local: u64,
    peer: u64,
    rbuf: FrameBuffer,
}

impl Transport for SimTransport {
    fn connect(&mut self, now_ms: u64) -> bool {
        let mut s = self.net.lock();
        // Trust the caller's clock for the attempt log when it is
        // ahead (links poll with the harness clock).
        let at = now_ms.max(s.now_ms);
        s.attempts.push((at, self.local, self.peer));
        if s.partitions.contains(&pair(self.local, self.peer)) {
            return false;
        }
        s.conns.insert(pair(self.local, self.peer));
        true
    }

    fn is_connected(&self) -> bool {
        self.net.lock().connected(self.local, self.peer)
    }

    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let mut s = self.net.lock();
        if !s.connected(self.local, self.peer) {
            return Err(TransportError::Disconnected);
        }
        let mut bytes = frame(payload);
        let plan = s.plan;
        if s.chance(plan.drop_p) {
            return Ok(()); // vanished on the wire
        }
        if s.chance(plan.torn_p) {
            // Keep the header plus half the payload: enough for the
            // receiver to see a frame it can never complete or whose
            // CRC fails.
            bytes.truncate(FRAME_HEADER + payload.len() / 2);
        }
        let mut delay = s.uniform(plan.delay_lo_ms, plan.delay_hi_ms);
        if s.chance(plan.reorder_p) {
            delay += s.uniform(1, 50);
        }
        let deliver_at = s.now_ms + delay;
        let dup = s.chance(plan.dup_p);
        let key = (self.local, self.peer);
        let order = s.order;
        s.order += if dup { 2 } else { 1 };
        let q = s.queues.entry(key).or_default();
        q.insert((deliver_at, order), bytes.clone());
        if dup {
            q.insert((deliver_at, order + 1), bytes);
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        // Frames already pulled off the network re-frame through the
        // same buffer as TCP, so torn bytes fail identically.
        let mut s = self.net.lock();
        if !s.connected(self.local, self.peer) {
            return Err(TransportError::Disconnected);
        }
        let now = s.now_ms;
        loop {
            match self.rbuf.next_frame() {
                Ok(Some(p)) => return Ok(Some(p)),
                Ok(None) => {}
                Err(e) => {
                    // Corrupt stream: the connection is unusable for
                    // both sides, like a TCP reset after bad framing.
                    s.sever(self.local, self.peer);
                    self.rbuf = FrameBuffer::new();
                    return Err(TransportError::Corrupt(e.to_string()));
                }
            }
            let Some(q) = s.queues.get_mut(&(self.peer, self.local)) else {
                return Ok(None);
            };
            let Some((&key, _)) = q.iter().next() else {
                return Ok(None);
            };
            if key.0 > now {
                return Ok(None);
            }
            let bytes = q.remove(&key).expect("key just observed");
            // Each queued blob is one send() call's worth of stream
            // bytes. A blob shorter than its own declared frame is a
            // torn write whose tail will never arrive (the sender
            // moved on); on TCP the stream dies there, so surface it
            // now instead of waiting for later bytes to misalign the
            // CRC. Only decidable when the buffer holds no earlier
            // partial frame.
            if self.rbuf.pending() == 0 && bytes.len() >= FRAME_HEADER {
                let declared =
                    u32::from_le_bytes(bytes[..4].try_into().expect("length checked")) as usize;
                if bytes.len() < FRAME_HEADER + declared {
                    s.sever(self.local, self.peer);
                    self.rbuf = FrameBuffer::new();
                    return Err(TransportError::Corrupt(format!(
                        "torn frame: {} of {} bytes",
                        bytes.len(),
                        FRAME_HEADER + declared
                    )));
                }
            }
            self.rbuf.extend(&bytes);
        }
    }

    fn close(&mut self) {
        let mut s = self.net.lock();
        s.sever(self.local, self.peer);
        drop(s);
        self.rbuf = FrameBuffer::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_on_a_perfect_net() {
        let net = SimNet::new(1);
        let mut a = net.transport(1, 2);
        let mut b = net.transport(2, 1);
        assert!(a.connect(0));
        assert!(b.is_connected());
        a.send(b"hi").unwrap();
        a.send(b"there").unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"hi");
        assert_eq!(b.recv().unwrap().unwrap(), b"there");
        assert_eq!(b.recv().unwrap(), None);
    }

    #[test]
    fn delay_holds_frames_until_time_passes() {
        let net = SimNet::new(2);
        net.set_plan(FaultPlan {
            delay_lo_ms: 10,
            delay_hi_ms: 10,
            ..FaultPlan::default()
        });
        let mut a = net.transport(1, 2);
        let mut b = net.transport(2, 1);
        a.connect(0);
        a.send(b"late").unwrap();
        assert_eq!(b.recv().unwrap(), None);
        net.advance(10);
        assert_eq!(b.recv().unwrap().unwrap(), b"late");
    }

    #[test]
    fn torn_writes_surface_as_corruption() {
        let net = SimNet::new(3);
        net.set_plan(FaultPlan {
            torn_p: 1.0,
            ..FaultPlan::default()
        });
        let mut a = net.transport(1, 2);
        let mut b = net.transport(2, 1);
        a.connect(0);
        a.send(b"will be torn mid-write").unwrap();
        assert!(matches!(b.recv(), Err(TransportError::Corrupt(_))));
        // The connection died with the corruption.
        assert!(!b.is_connected());
    }

    #[test]
    fn partition_breaks_and_heal_restores() {
        let net = SimNet::new(4);
        let mut a = net.transport(1, 2);
        let mut b = net.transport(2, 1);
        a.connect(0);
        net.partition(1, 2);
        assert!(matches!(a.send(b"x"), Err(TransportError::Disconnected)));
        assert!(!a.connect(5));
        net.heal(1, 2);
        assert!(a.connect(9));
        a.send(b"back").unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"back");
        assert_eq!(net.connect_attempts(1, 2), vec![0, 5, 9]);
    }

    #[test]
    fn same_seed_same_faults() {
        let run = |seed: u64| -> Vec<Option<Vec<u8>>> {
            let net = SimNet::new(seed);
            net.set_plan(FaultPlan {
                drop_p: 0.3,
                dup_p: 0.2,
                ..FaultPlan::default()
            });
            let mut a = net.transport(1, 2);
            let mut b = net.transport(2, 1);
            a.connect(0);
            for i in 0..20u8 {
                a.send(&[i]).unwrap();
            }
            (0..40).map(|_| b.recv().unwrap()).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }
}
