//! One federated broker process, for the multi-process fault harness.
//!
//! The `federation_proc` integration test spawns several of these,
//! `kill -9`s one mid-stream, restarts it with `--resume`, and then
//! checks every node's durable delivery log against the
//! single-process oracle: every published event delivered exactly
//! once, in order, per peer.
//!
//! The node keeps an append-only *state log* (`--state FILE`). Each
//! pump appends its remote deliveries (`D peer seq x`) and receive
//! floors (`F peer floor`) in a single `write` + fsync before the
//! next pump can acknowledge the traffic — the same log-before-ack
//! contract the library documents. The publish watermark (`P next`)
//! is the mirror image: it is written and fsynced *before* the slice
//! it covers is published, so a publisher crash mid-slice replays
//! nothing on `--resume` (replaying under a bumped epoch would mint
//! fresh sequence numbers that receivers' reset floors cannot dedupe
//! — silent duplicates; the unforwarded tail of a crashed slice is
//! lost instead: at-most-once per slice). On `--resume` the log's
//! floors are replayed into [`Federation::add_peer`] (and the stored
//! epoch is bumped) so redelivered overlap deduplicates instead of
//! duplicating.
//!
//! Flags (hand-parsed; all times are wall-clock milliseconds):
//!
//! ```text
//! --node N              this broker's node id (required)
//! --state FILE          append-only durable state log (required)
//! --listen ADDR         accept inbound federation links on ADDR
//! --peer ID=ADDR        a peer and its listen address (repeatable)
//! --subscribe EXPR      local subscription, e.g. 'profile(x >= 0)'
//! --publish LO..HI      publish events x = LO,LO+1,…,HI-1, paced
//! --per-pump N          events published per pump (default 5)
//! --wait-interest N     hold publishing until N peers' forwarded
//!                       interest has arrived (default: all peers)
//! --expect N            exit once N deliveries are logged (after
//!                       draining); otherwise run until --run-ms
//! --run-ms MS           hard deadline (default 30000)
//! --resume              restore floors/epoch from the state log
//! ```

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ens_service::{Broker, BrokerConfig, Federation, FederationConfig, OsFs, Vfs};
use ens_types::{Domain, Event, Schema};

/// The fixed harness schema: one int attribute `x` in [0, 9999].
fn schema() -> Schema {
    Schema::builder()
        .attribute("x", Domain::int(0, 9999))
        .expect("static schema")
        .build()
}

struct Options {
    node: u64,
    state: String,
    listen: Option<SocketAddr>,
    peers: Vec<(u64, SocketAddr)>,
    subscribe: Option<String>,
    publish: Option<(i64, i64)>,
    per_pump: usize,
    wait_interest: Option<usize>,
    expect: Option<usize>,
    run_ms: u64,
    resume: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        node: u64::MAX,
        state: String::new(),
        listen: None,
        peers: Vec::new(),
        subscribe: None,
        publish: None,
        per_pump: 5,
        wait_interest: None,
        expect: None,
        run_ms: 30_000,
        resume: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--node" => opts.node = value("--node")?.parse().map_err(|e| format!("{e}"))?,
            "--state" => opts.state = value("--state")?,
            "--listen" => {
                opts.listen = Some(value("--listen")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--peer" => {
                let v = value("--peer")?;
                let (id, addr) = v.split_once('=').ok_or("--peer wants ID=ADDR")?;
                opts.peers.push((
                    id.parse().map_err(|e| format!("{e}"))?,
                    addr.parse().map_err(|e| format!("{e}"))?,
                ));
            }
            "--subscribe" => opts.subscribe = Some(value("--subscribe")?),
            "--publish" => {
                let v = value("--publish")?;
                let (lo, hi) = v.split_once("..").ok_or("--publish wants LO..HI")?;
                opts.publish = Some((
                    lo.parse().map_err(|e| format!("{e}"))?,
                    hi.parse().map_err(|e| format!("{e}"))?,
                ));
            }
            "--per-pump" => {
                opts.per_pump = value("--per-pump")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--wait-interest" => {
                opts.wait_interest = Some(
                    value("--wait-interest")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            "--expect" => {
                opts.expect = Some(value("--expect")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--run-ms" => opts.run_ms = value("--run-ms")?.parse().map_err(|e| format!("{e}"))?,
            "--resume" => opts.resume = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.node == u64::MAX {
        return Err("--node is required".into());
    }
    if opts.state.is_empty() {
        return Err("--state is required".into());
    }
    Ok(opts)
}

/// What a previous incarnation left in the state log.
#[derive(Default)]
struct Restored {
    epoch: u64,
    /// Last `F peer floor` per peer.
    floors: Vec<(u64, u64)>,
    /// Last `P next` publish watermark.
    next_publish: i64,
    /// `D` lines already logged (counted toward `--expect`).
    delivered: usize,
}

fn restore(vfs: &dyn Vfs, path: &str) -> Restored {
    let mut r = Restored::default();
    let Ok(bytes) = vfs.read(Path::new(path)) else {
        return r;
    };
    let text = String::from_utf8_lossy(&bytes);
    let mut floors: Vec<(u64, u64)> = Vec::new();
    for line in text.lines() {
        let mut f = line.split_whitespace();
        match f.next() {
            Some("N") => {
                if let Some(e) = f.nth(1).and_then(|v| v.parse().ok()) {
                    r.epoch = e;
                }
            }
            Some("P") => {
                if let Some(n) = f.next().and_then(|v| v.parse().ok()) {
                    r.next_publish = n;
                }
            }
            Some("F") => {
                if let (Some(p), Some(fl)) = (
                    f.next().and_then(|v| v.parse().ok()),
                    f.next().and_then(|v| v.parse().ok()),
                ) {
                    floors.retain(|&(q, _)| q != p);
                    floors.push((p, fl));
                }
            }
            Some("D") => r.delivered += 1,
            _ => {}
        }
    }
    r.floors = floors;
    r
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let vfs = OsFs;
    let restored = if opts.resume {
        restore(&vfs, &opts.state)
    } else {
        Restored::default()
    };
    let epoch = restored.epoch + 1;

    let state_path = Path::new(&opts.state);
    let created = !vfs.exists(state_path);
    let mut log = vfs
        .open_append(state_path)
        .map_err(|e| format!("open {}: {e}", opts.state))?;
    if created {
        // The log's directory entry must be durable before anything
        // the log acknowledges: a crash that forgets the whole file
        // would silently reset the epoch and every receive floor.
        let dir = state_path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or(Path::new("."));
        vfs.sync_dir(dir)
            .map_err(|e| format!("sync {}: {e}", dir.display()))?;
    }

    let schema = schema();
    let broker = Arc::new(
        Broker::new(&schema, BrokerConfig::default()).map_err(|e| format!("broker: {e}"))?,
    );
    let fed = Federation::new(
        Arc::clone(&broker),
        FederationConfig {
            node: opts.node,
            epoch,
            ..FederationConfig::default()
        },
    );
    if let Some(addr) = opts.listen {
        let bound = fed.bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        println!("LISTEN {bound}");
    }
    let floor_of = |peer: u64| {
        restored
            .floors
            .iter()
            .find(|&&(p, _)| p == peer)
            .map_or(0, |&(_, f)| f)
    };
    for &(peer, addr) in &opts.peers {
        fed.add_tcp_peer(peer, addr, floor_of(peer));
    }
    let _sub = match &opts.subscribe {
        Some(expr) => Some(
            fed.subscribe_parsed(expr)
                .map_err(|e| format!("subscribe: {e}"))?,
        ),
        None => None,
    };

    log.append(format!("N {} {epoch}\n", opts.node).as_bytes())
        .map_err(|e| format!("{e}"))?;
    log.sync_data().map_err(|e| format!("{e}"))?;

    let mut next_publish = if opts.resume {
        restored
            .next_publish
            .max(opts.publish.map_or(0, |(lo, _)| lo))
    } else {
        opts.publish.map_or(0, |(lo, _)| lo)
    };
    let mut delivered = restored.delivered;
    let start = Instant::now();
    let deadline = start + Duration::from_millis(opts.run_ms);
    let mut done_publishing_at: Option<Instant> = None;
    let mut expect_met_at: Option<Instant> = None;

    loop {
        let now_ms = start.elapsed().as_millis() as u64;
        let report = fed.pump(now_ms).map_err(|e| format!("pump: {e}"))?;

        let mut entry = String::new();
        for d in &report.delivered {
            let x = d
                .event
                .value(schema.require("x").map_err(|e| format!("{e}"))?)
                .map_or(-1, |v| match v {
                    ens_types::Value::Int(i) => *i,
                    _ => -1,
                });
            writeln!(entry, "D {} {} {x}", d.peer, d.seq).expect("string write");
        }
        delivered += report.delivered.len();

        // Publish the next slice once every peer link has greeted and
        // the expected interest has arrived (otherwise early events
        // race the subscription exchange and are correctly — but
        // unhelpfully for the oracle — unmatched).
        if let Some((_, hi)) = opts.publish {
            let m = fed.metrics();
            let want_interest = opts.wait_interest.unwrap_or(opts.peers.len());
            if m.peers_up == opts.peers.len()
                && fed.interested_peers() >= want_interest
                && next_publish < hi
            {
                let end = hi.min(next_publish + opts.per_pump as i64);
                // Log-before-publish: the watermark is a durable
                // *intent* record, fsynced before any event of the
                // slice is forwarded. A crash mid-slice then replays
                // nothing on --resume — re-publishing under the new
                // epoch would hand the rows fresh sequence numbers
                // that receivers' (epoch-reset) floors cannot dedupe,
                // i.e. undetectable duplicates. The trade is that the
                // crashed slice's unforwarded tail is lost: publisher
                // crash semantics are at-most-once per slice, never
                // duplicating.
                log.append(format!("P {end}\n").as_bytes())
                    .map_err(|e| format!("{e}"))?;
                log.sync_data().map_err(|e| format!("{e}"))?;
                for x in next_publish..end {
                    let event = Event::builder(&schema)
                        .value("x", x)
                        .map_err(|e| format!("{e}"))?
                        .build();
                    fed.publish(&event).map_err(|e| format!("publish: {e}"))?;
                }
                next_publish = end;
            }
            if next_publish >= hi && done_publishing_at.is_none() && fed.backlog() == 0 {
                done_publishing_at = Some(Instant::now());
            }
        }
        for &(peer, floor) in &report.floors {
            writeln!(entry, "F {peer} {floor}").expect("string write");
        }
        if !entry.is_empty() {
            // One write + fsync per pump: the log is durable before
            // the next pump's lazy ack lets the peer forget.
            log.append(entry.as_bytes()).map_err(|e| format!("{e}"))?;
            log.sync_data().map_err(|e| format!("{e}"))?;
        }

        let drained = fed.backlog() == 0;
        if let Some(expect) = opts.expect {
            if delivered >= expect && drained && expect_met_at.is_none() {
                expect_met_at = Some(Instant::now());
            }
            // Grace pumps after the target: the lazy ack for the last
            // batch goes out on the pump *after* it was logged, and
            // exiting before it would leave the sender retransmitting
            // at a ghost.
            if let Some(at) = expect_met_at {
                if at.elapsed() > Duration::from_millis(300) {
                    println!("DONE delivered={delivered}");
                    return Ok(());
                }
            }
        }
        if let Some(at) = done_publishing_at {
            // Publisher: linger after draining so late peers can still
            // be served retransmissions, then exit.
            if opts.expect.is_none() && at.elapsed() > Duration::from_millis(1500) {
                println!("DONE published={next_publish}");
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            println!("DEADLINE delivered={delivered}");
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ens-fed-node: {e}");
            ExitCode::FAILURE
        }
    }
}
