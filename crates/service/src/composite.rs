//! Composite events — the extension announced in the paper's outlook
//! ("We will extend the filter to handle composite events", §5).
//!
//! A composite event is a temporal combination of primitive profile
//! matches. The detector consumes the per-event match sets a
//! [`Broker`](crate::Broker) reports (via
//! [`PublishReceipt::matched`](crate::PublishReceipt)) together with a
//! logical timestamp, and fires composite ids when their expressions are
//! satisfied.
//!
//! Semantics (non-consuming, per observation at logical time `t` with
//! window `w`):
//!
//! * `Primitive(s)` fires iff subscription `s` matched at `t`;
//! * `Or(a, b)` fires iff `a` or `b` fires at `t`;
//! * `And(a, b)` fires iff one operand fires at `t` and the other fired
//!   at some `t' ∈ [t − w, t]`;
//! * `Seq(a, b)` fires iff `b` fires at `t` and `a` fired strictly
//!   earlier at some `t' ∈ [t − w, t)`;
//! * `Repeat(e, k)` fires iff `e` fires at `t` and has fired at least
//!   `k` times within `[t − w, t]` (e.g. "three storm readings within
//!   an hour").

use serde::{Deserialize, Serialize};

use crate::subscription::SubscriptionId;
use crate::ServiceError;

/// Identifier of a registered composite definition.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct CompositeId(u64);

impl CompositeId {
    /// The raw value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for CompositeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A composite-event expression over primitive subscriptions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompositeExpr {
    /// A primitive profile match.
    Primitive(SubscriptionId),
    /// Both operands within the window.
    And(Box<CompositeExpr>, Box<CompositeExpr>),
    /// Either operand.
    Or(Box<CompositeExpr>, Box<CompositeExpr>),
    /// Left strictly before right, within the window.
    Seq(Box<CompositeExpr>, Box<CompositeExpr>),
    /// At least `k` occurrences of the operand within the window.
    Repeat(Box<CompositeExpr>, u32),
}

impl CompositeExpr {
    /// `a AND b`.
    #[must_use]
    pub fn and(a: CompositeExpr, b: CompositeExpr) -> Self {
        CompositeExpr::And(Box::new(a), Box::new(b))
    }

    /// `a OR b`.
    #[must_use]
    pub fn or(a: CompositeExpr, b: CompositeExpr) -> Self {
        CompositeExpr::Or(Box::new(a), Box::new(b))
    }

    /// `a ; b` (sequence).
    #[must_use]
    pub fn seq(a: CompositeExpr, b: CompositeExpr) -> Self {
        CompositeExpr::Seq(Box::new(a), Box::new(b))
    }

    /// `k × a` within the window.
    #[must_use]
    pub fn repeat(a: CompositeExpr, k: u32) -> Self {
        CompositeExpr::Repeat(Box::new(a), k)
    }

    fn primitives(&self, out: &mut Vec<SubscriptionId>) {
        match self {
            CompositeExpr::Primitive(s) => out.push(*s),
            CompositeExpr::And(a, b) | CompositeExpr::Or(a, b) | CompositeExpr::Seq(a, b) => {
                a.primitives(out);
                b.primitives(out);
            }
            CompositeExpr::Repeat(a, _) => a.primitives(out),
        }
    }
}

/// Mutable evaluation state mirroring an expression tree.
#[derive(Debug, Clone)]
struct NodeState {
    last_fired: Option<u64>,
    /// Recent firing times (only maintained below `Repeat` nodes).
    recent: Vec<u64>,
    children: Vec<NodeState>,
}

impl NodeState {
    fn for_expr(expr: &CompositeExpr) -> Self {
        let children = match expr {
            CompositeExpr::Primitive(_) => Vec::new(),
            CompositeExpr::And(a, b) | CompositeExpr::Or(a, b) | CompositeExpr::Seq(a, b) => {
                vec![NodeState::for_expr(a), NodeState::for_expr(b)]
            }
            CompositeExpr::Repeat(a, _) => vec![NodeState::for_expr(a)],
        };
        NodeState {
            last_fired: None,
            recent: Vec::new(),
            children,
        }
    }
}

struct Definition {
    id: CompositeId,
    expr: CompositeExpr,
    window: u64,
    state: NodeState,
}

/// Detects composite events over a stream of primitive match sets.
///
/// # Example
///
/// ```
/// use ens_service::{CompositeDetector, CompositeExpr};
/// use ens_service::SubscriptionId;
///
/// let heat = SubscriptionId::new(0);
/// let dry = SubscriptionId::new(1);
/// let mut det = CompositeDetector::new();
/// // Fire when heat is followed by dryness within 10 ticks.
/// let fire_risk = det.register(
///     CompositeExpr::seq(
///         CompositeExpr::Primitive(heat),
///         CompositeExpr::Primitive(dry),
///     ),
///     10,
/// );
/// assert!(det.observe(&[heat], 1).is_empty());
/// assert_eq!(det.observe(&[dry], 5), vec![fire_risk]);
/// ```
#[derive(Default)]
pub struct CompositeDetector {
    defs: Vec<Definition>,
    next_id: u64,
}

impl CompositeDetector {
    /// An empty detector.
    #[must_use]
    pub fn new() -> Self {
        CompositeDetector::default()
    }

    /// Registers a composite definition with a time window (logical
    /// units, same clock as passed to [`CompositeDetector::observe`]).
    pub fn register(&mut self, expr: CompositeExpr, window: u64) -> CompositeId {
        let id = CompositeId(self.next_id);
        self.next_id += 1;
        let state = NodeState::for_expr(&expr);
        self.defs.push(Definition {
            id,
            expr,
            window,
            state,
        });
        id
    }

    /// Removes a definition.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownComposite`] for unknown ids.
    pub fn unregister(&mut self, id: CompositeId) -> Result<(), ServiceError> {
        let before = self.defs.len();
        self.defs.retain(|d| d.id != id);
        if self.defs.len() == before {
            return Err(ServiceError::UnknownComposite(id.get()));
        }
        Ok(())
    }

    /// Number of registered definitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether no definitions are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// All primitive subscriptions referenced by a definition (useful to
    /// know which broker subscriptions must be kept alive).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownComposite`] for unknown ids.
    pub fn primitives(&self, id: CompositeId) -> Result<Vec<SubscriptionId>, ServiceError> {
        let def = self
            .defs
            .iter()
            .find(|d| d.id == id)
            .ok_or(ServiceError::UnknownComposite(id.get()))?;
        let mut out = Vec::new();
        def.expr.primitives(&mut out);
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Feeds one observation: the subscriptions matched by an event at
    /// logical time `now`. Returns the composites that fire.
    ///
    /// Timestamps must be non-decreasing across calls; this is the
    /// "time and order of occurrence" clock of the paper's §1.
    pub fn observe(&mut self, matched: &[SubscriptionId], now: u64) -> Vec<CompositeId> {
        let mut fired = Vec::new();
        for def in &mut self.defs {
            if eval(&def.expr, &mut def.state, matched, now, def.window) {
                fired.push(def.id);
            }
        }
        fired
    }
}

impl std::fmt::Debug for CompositeDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeDetector")
            .field("definitions", &self.defs.len())
            .finish_non_exhaustive()
    }
}

/// Evaluates `expr` at `now`, updating `state`, and reports whether the
/// node fires at `now`.
fn eval(
    expr: &CompositeExpr,
    state: &mut NodeState,
    matched: &[SubscriptionId],
    now: u64,
    window: u64,
) -> bool {
    let fires = match expr {
        CompositeExpr::Primitive(s) => matched.contains(s),
        CompositeExpr::Or(a, b) => {
            let fa = eval(a, &mut state.children[0], matched, now, window);
            let fb = eval(b, &mut state.children[1], matched, now, window);
            fa || fb
        }
        CompositeExpr::And(a, b) => {
            let fa = eval(a, &mut state.children[0], matched, now, window);
            let fb = eval(b, &mut state.children[1], matched, now, window);
            let within = |t: Option<u64>| t.is_some_and(|t| now.saturating_sub(t) <= window);
            (fa && within(state.children[1].last_fired))
                || (fb && within(state.children[0].last_fired))
        }
        CompositeExpr::Seq(a, b) => {
            // Evaluate left first so "a then b in the same observation"
            // does not fire (strictly earlier is required).
            let a_last_before = state.children[0].last_fired;
            let _ = eval(a, &mut state.children[0], matched, now, window);
            let fb = eval(b, &mut state.children[1], matched, now, window);
            fb && a_last_before.is_some_and(|t| t < now && now - t <= window)
        }
        CompositeExpr::Repeat(a, k) => {
            let fa = eval(a, &mut state.children[0], matched, now, window);
            if fa {
                state.recent.push(now);
            }
            state.recent.retain(|t| now.saturating_sub(*t) <= window);
            fa && state.recent.len() as u32 >= *k
        }
    };
    if fires {
        state.last_fired = Some(now);
    }
    fires
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> SubscriptionId {
        SubscriptionId::new(n)
    }

    #[test]
    fn primitive_fires_on_match() {
        let mut det = CompositeDetector::new();
        let id = det.register(CompositeExpr::Primitive(s(1)), 5);
        assert!(det.observe(&[s(2)], 0).is_empty());
        assert_eq!(det.observe(&[s(1), s(2)], 1), vec![id]);
    }

    #[test]
    fn and_requires_both_within_window() {
        let mut det = CompositeDetector::new();
        let id = det.register(
            CompositeExpr::and(
                CompositeExpr::Primitive(s(0)),
                CompositeExpr::Primitive(s(1)),
            ),
            5,
        );
        assert!(det.observe(&[s(0)], 0).is_empty());
        assert_eq!(det.observe(&[s(1)], 3), vec![id], "within window");
        assert!(det.observe(&[s(0)], 100).is_empty(), "window expired");
        // Simultaneous match fires too.
        assert_eq!(det.observe(&[s(0), s(1)], 200), vec![id]);
    }

    #[test]
    fn or_fires_on_either() {
        let mut det = CompositeDetector::new();
        let id = det.register(
            CompositeExpr::or(
                CompositeExpr::Primitive(s(0)),
                CompositeExpr::Primitive(s(1)),
            ),
            5,
        );
        assert_eq!(det.observe(&[s(1)], 0), vec![id]);
        assert_eq!(det.observe(&[s(0)], 1), vec![id]);
        assert!(det.observe(&[s(2)], 2).is_empty());
    }

    #[test]
    fn seq_requires_strict_order() {
        let mut det = CompositeDetector::new();
        let id = det.register(
            CompositeExpr::seq(
                CompositeExpr::Primitive(s(0)),
                CompositeExpr::Primitive(s(1)),
            ),
            10,
        );
        // b before a: nothing.
        assert!(det.observe(&[s(1)], 0).is_empty());
        assert!(det.observe(&[s(0)], 1).is_empty());
        // a then b within window: fires.
        assert_eq!(det.observe(&[s(1)], 5), vec![id]);
        // Same-instant a and b does NOT satisfy a-then-b.
        let mut det2 = CompositeDetector::new();
        let id2 = det2.register(
            CompositeExpr::seq(
                CompositeExpr::Primitive(s(0)),
                CompositeExpr::Primitive(s(1)),
            ),
            10,
        );
        assert!(det2.observe(&[s(0), s(1)], 7).is_empty());
        // But the pending `a` still enables a later b.
        assert_eq!(det2.observe(&[s(1)], 8), vec![id2]);
    }

    #[test]
    fn seq_window_expiry() {
        let mut det = CompositeDetector::new();
        let id = det.register(
            CompositeExpr::seq(
                CompositeExpr::Primitive(s(0)),
                CompositeExpr::Primitive(s(1)),
            ),
            3,
        );
        det.observe(&[s(0)], 0);
        assert!(det.observe(&[s(1)], 10).is_empty(), "too late");
        det.observe(&[s(0)], 11);
        assert_eq!(det.observe(&[s(1)], 13), vec![id]);
    }

    #[test]
    fn nested_expressions() {
        // (heat AND dry) ; wind — a fire-weather sequence.
        let mut det = CompositeDetector::new();
        let id = det.register(
            CompositeExpr::seq(
                CompositeExpr::and(
                    CompositeExpr::Primitive(s(0)),
                    CompositeExpr::Primitive(s(1)),
                ),
                CompositeExpr::Primitive(s(2)),
            ),
            100,
        );
        det.observe(&[s(0)], 1);
        det.observe(&[s(1)], 2); // AND fires at t=2
        assert_eq!(det.observe(&[s(2)], 3), vec![id]);
    }

    #[test]
    fn repeat_counts_occurrences_within_window() {
        let mut det = CompositeDetector::new();
        let id = det.register(CompositeExpr::repeat(CompositeExpr::Primitive(s(0)), 3), 10);
        assert!(det.observe(&[s(0)], 0).is_empty(), "1 of 3");
        assert!(det.observe(&[s(0)], 4).is_empty(), "2 of 3");
        assert_eq!(det.observe(&[s(0)], 8), vec![id], "3 within the window");
        // The window slides: the t=0 occurrence has expired by t=12,
        // but t=4/t=8/t=12 still make three.
        assert_eq!(det.observe(&[s(0)], 12), vec![id]);
        // After a long gap the count restarts.
        assert!(det.observe(&[s(0)], 100).is_empty());
        assert!(
            det.observe(&[s(2)], 101).is_empty(),
            "non-matching events don't count"
        );
        assert!(det.observe(&[s(0)], 102).is_empty(), "2 of 3");
        assert_eq!(det.observe(&[s(0)], 103), vec![id]);
    }

    #[test]
    fn repeat_composes_with_seq() {
        // Three gusts then a pressure drop.
        let mut det = CompositeDetector::new();
        let id = det.register(
            CompositeExpr::seq(
                CompositeExpr::repeat(CompositeExpr::Primitive(s(0)), 3),
                CompositeExpr::Primitive(s(1)),
            ),
            20,
        );
        assert_eq!(det.primitives(id).unwrap(), vec![s(0), s(1)]);
        det.observe(&[s(0)], 1);
        det.observe(&[s(0)], 2);
        det.observe(&[s(0)], 3); // Repeat fires here
        assert_eq!(det.observe(&[s(1)], 10), vec![id]);
    }

    #[test]
    fn register_unregister() {
        let mut det = CompositeDetector::new();
        let a = det.register(CompositeExpr::Primitive(s(0)), 1);
        let b = det.register(CompositeExpr::Primitive(s(1)), 1);
        assert_eq!(det.len(), 2);
        assert_eq!(det.primitives(a).unwrap(), vec![s(0)]);
        det.unregister(a).unwrap();
        assert!(det.unregister(a).is_err());
        assert_eq!(det.len(), 1);
        assert_eq!(det.observe(&[s(1)], 0), vec![b]);
    }

    #[test]
    fn multiple_definitions_fire_independently() {
        let mut det = CompositeDetector::new();
        let a = det.register(CompositeExpr::Primitive(s(0)), 1);
        let b = det.register(CompositeExpr::Primitive(s(0)), 1);
        assert_eq!(det.observe(&[s(0)], 0), vec![a, b]);
    }
}
