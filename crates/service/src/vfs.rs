//! Storage virtual filesystem: the seam between the durability layer
//! and the bytes that actually reach disk.
//!
//! Everything the broker persists — WAL appends, checkpoint staging,
//! renames, directory fsyncs, the federation node's state log — goes
//! through the [`Vfs`] trait instead of `std::fs`, for the same reason
//! the federation layer routes every packet through its `Transport`
//! seam: the interesting failures live *below* the API. Two backends:
//!
//! * [`OsFs`] — the real filesystem (production).
//! * [`FaultFs`] — an in-memory filesystem that records every mutation
//!   in an append-only journal and can replay any prefix of it into a
//!   **crash image**: the state a real disk could legally be in if the
//!   machine lost power at that journal boundary. Unsynced writes may
//!   be dropped, reordered or torn at an arbitrary byte offset, and
//!   unsynced directory entries (a just-created WAL, a just-renamed
//!   checkpoint) may vanish — exactly the artifacts POSIX permits
//!   until `fsync` of the file *and of its parent directory*. It also
//!   injects live faults: ENOSPC-style append failures, `EIO` reads,
//!   short reads, and bit rot.
//!
//! The crash model, precisely: data reaches *durable* state only via
//! `sync_data` on the file (for its bytes) or [`Vfs::sync_dir`] on the
//! parent directory (for its name — creations, renames, removals).
//! A crash image starts from the durable state and then lets each
//! pending (unsynced) operation survive or vanish according to a
//! seeded [`FaultPlan`]: file writes independently (reordering) or as
//! a prefix, with the last survivor optionally torn mid-buffer;
//! directory operations only as a prefix (directory metadata is
//! journalled in order by real filesystems). A surviving write whose
//! predecessor vanished lands past the durable end of file — the gap
//! is zero-filled, which is what WAL salvage has to chew through.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

/// A filesystem backend for the durability layer. All paths are
/// interpreted by the backend; [`OsFs`] maps them to the host
/// filesystem, [`FaultFs`] to its in-memory namespace.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Creates `dir` and any missing ancestors.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Reads the entire file at `path`.
    ///
    /// # Errors
    ///
    /// `NotFound` if no such file; injected `EIO`/short reads on
    /// [`FaultFs`]; other backend I/O failures.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates `path` as a fresh empty file, replacing any existing
    /// one. The new *name* is durable only after [`Vfs::sync_dir`] on
    /// the parent directory.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures (e.g. missing parent).
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens `path` for appending, creating it if missing.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically renames `from` to `to` (same directory), replacing
    /// `to` if present. Durable only after [`Vfs::sync_dir`].
    ///
    /// # Errors
    ///
    /// `NotFound` if `from` does not exist; backend I/O failures.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`. Durable after [`Vfs::sync_dir`].
    ///
    /// # Errors
    ///
    /// `NotFound` if no such file; backend I/O failures.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs the directory itself, making pending entry changes
    /// (creations, renames, removals) durable. Without this, a crash
    /// can forget a file that was created — or un-rename a checkpoint
    /// — even though the file's *contents* were synced.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// The file names directly inside `dir` (no recursion), sorted.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// An open writable file handle from a [`Vfs`] backend.
pub trait VfsFile: Send {
    /// Appends `buf` at the end of the file.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures (possibly after a partial —
    /// torn — write, as a real ENOSPC does).
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flushes the file's *contents* to durable storage (not its
    /// directory entry — see [`Vfs::sync_dir`]).
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Truncates (or zero-extends) the file to `len` bytes.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// The file's current length in bytes.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn byte_len(&self) -> io::Result<u64>;
}

/// The real filesystem backend.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsFs;

struct OsFile(std::fs::File);

impl VfsFile for OsFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn byte_len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Vfs for OsFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OsFile(std::fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(OsFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening the directory and fsyncing the handle is the POSIX
        // idiom for flushing its entry table.
        std::fs::File::open(dir)?.sync_all()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What a simulated power loss does to the operations that were still
/// pending (unsynced) at the crash boundary. Deterministic per
/// `(seed, boundary)` pair, so every failure reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seeds the survival sampling.
    pub seed: u64,
    /// Unsynced file writes may be lost entirely.
    pub drop_unsynced_writes: bool,
    /// Unsynced file writes survive independently (out-of-order disk
    /// scheduling) instead of as an in-order prefix. Only meaningful
    /// with [`FaultPlan::drop_unsynced_writes`].
    pub reorder_unsynced_writes: bool,
    /// The last surviving unsynced write may be torn at an arbitrary
    /// byte offset.
    pub tear_writes: bool,
    /// Unsynced directory entries (creations, renames, removals) may
    /// be lost — the classic missing-parent-fsync artifact.
    pub drop_unsynced_dir_ops: bool,
}

impl FaultPlan {
    /// Everything allowed: drops, reordering, torn writes and lost
    /// directory entries.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_unsynced_writes: true,
            reorder_unsynced_writes: true,
            tear_writes: true,
            drop_unsynced_dir_ops: true,
        }
    }

    /// A well-behaved disk: everything written before the crash
    /// survives, synced or not.
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_unsynced_writes: false,
            reorder_unsynced_writes: false,
            tear_writes: false,
            drop_unsynced_dir_ops: false,
        }
    }
}

/// One recorded mutation. Journal indices are the crash boundaries.
#[derive(Debug, Clone)]
enum JournalOp {
    /// A directory entry `name -> file` appeared (create, or the
    /// destination side of an over-writing rename).
    Link {
        dir: PathBuf,
        name: String,
        file: usize,
    },
    /// A directory entry was removed.
    Unlink { dir: PathBuf, name: String },
    /// `from` was atomically renamed to `to` within `dir`.
    Rename {
        dir: PathBuf,
        from: String,
        to: String,
    },
    /// Bytes were written to a file node at an offset.
    Write {
        file: usize,
        offset: usize,
        data: Vec<u8>,
    },
    /// A file node was truncated or zero-extended.
    SetLen { file: usize, len: usize },
    /// The file node's contents were flushed.
    SyncFile { file: usize },
    /// The directory's entry table was flushed.
    SyncDir { dir: PathBuf },
}

/// Live injected faults (affect the running broker, not crash images).
#[derive(Debug, Default)]
struct LiveFaults {
    /// Appends fail (after writing half the buffer — a torn live
    /// write, like a real out-of-space failure).
    fail_appends: bool,
    /// Reads fail with `EIO`.
    fail_reads: bool,
    /// Reads return at most this many bytes.
    short_read: Option<usize>,
}

type DirTable = BTreeMap<PathBuf, BTreeMap<String, usize>>;

#[derive(Debug, Default)]
struct FsState {
    /// Durable-at-construction content per file node (crash images
    /// replay their journal on top of this).
    base_files: Vec<Vec<u8>>,
    base_dirs: DirTable,
    /// Live content per file node, indexed by node id. Nodes are
    /// never reused: a `create` over an existing name allocates a new
    /// node, so a crash image where the rename/creation vanished still
    /// sees the old node's bytes — inode semantics.
    files: Vec<Vec<u8>>,
    dirs: DirTable,
    journal: Vec<JournalOp>,
    faults: LiveFaults,
}

/// The fault-injecting in-memory filesystem. Cloning shares the
/// underlying state (it is a handle, like `Arc`).
#[derive(Clone)]
pub struct FaultFs {
    inner: Arc<Mutex<FsState>>,
}

impl fmt::Debug for FaultFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("FaultFs")
            .field("files", &st.files.len())
            .field("journal", &st.journal.len())
            .finish()
    }
}

impl Default for FaultFs {
    fn default() -> Self {
        Self::new()
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file", path.display()),
    )
}

/// Splits a path into (parent directory, file name); a bare file name
/// gets parent `.`.
fn split(path: &Path) -> io::Result<(PathBuf, String)> {
    let name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{}: not a file path", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    Ok((parent, name))
}

/// xorshift64* — self-contained so the fault model needs no RNG
/// dependency in the library build.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn apply_file_op(files: &mut [Vec<u8>], op: &JournalOp) {
    match op {
        JournalOp::Write { file, offset, data } => {
            let content = &mut files[*file];
            if content.len() < *offset {
                // The write that would have extended the file to
                // `offset` vanished: the survivor lands past the
                // durable end and the gap reads back as zeros.
                content.resize(*offset, 0);
            }
            let end = offset + data.len();
            if content.len() < end {
                content.resize(end, 0);
            }
            content[*offset..end].copy_from_slice(data);
        }
        JournalOp::SetLen { file, len } => files[*file].resize(*len, 0),
        _ => {}
    }
}

fn apply_dir_op(dirs: &mut DirTable, op: &JournalOp) {
    match op {
        JournalOp::Link { dir, name, file } => {
            dirs.entry(dir.clone())
                .or_default()
                .insert(name.clone(), *file);
        }
        JournalOp::Unlink { dir, name } => {
            if let Some(entries) = dirs.get_mut(dir) {
                entries.remove(name);
            }
        }
        JournalOp::Rename { dir, from, to } => {
            if let Some(entries) = dirs.get_mut(dir) {
                if let Some(file) = entries.remove(from) {
                    entries.insert(to.clone(), file);
                }
            }
        }
        _ => {}
    }
}

impl FaultFs {
    /// An empty fault-injecting filesystem.
    #[must_use]
    pub fn new() -> Self {
        FaultFs {
            inner: Arc::new(Mutex::new(FsState::default())),
        }
    }

    fn from_parts(files: Vec<Vec<u8>>, dirs: DirTable) -> Self {
        FaultFs {
            inner: Arc::new(Mutex::new(FsState {
                base_files: files.clone(),
                base_dirs: dirs.clone(),
                files,
                dirs,
                journal: Vec::new(),
                faults: LiveFaults::default(),
            })),
        }
    }

    /// The number of crash boundaries recorded so far — one per
    /// journalled mutation. `crash_image(k, _)` simulates power loss
    /// after the first `k` operations.
    #[must_use]
    pub fn boundaries(&self) -> usize {
        self.inner.lock().journal.len()
    }

    /// Enables/disables ENOSPC-style append failures: every append
    /// writes half its buffer, then fails.
    pub fn fail_appends(&self, enabled: bool) {
        self.inner.lock().faults.fail_appends = enabled;
    }

    /// Enables/disables `EIO` on every read.
    pub fn fail_reads(&self, enabled: bool) {
        self.inner.lock().faults.fail_reads = enabled;
    }

    /// Caps every read at `limit` bytes (`None` restores full reads) —
    /// the partial-read fault.
    pub fn short_reads(&self, limit: Option<usize>) {
        self.inner.lock().faults.short_read = limit;
    }

    /// Flips one bit of the live file at `path` (bit rot). Returns
    /// whether a byte at `offset` existed to corrupt.
    pub fn corrupt(&self, path: &Path, offset: usize) -> bool {
        let Ok((parent, name)) = split(path) else {
            return false;
        };
        let mut st = self.inner.lock();
        let Some(&file) = st.dirs.get(&parent).and_then(|d| d.get(&name)) else {
            return false;
        };
        match st.files[file].get_mut(offset) {
            Some(byte) => {
                *byte ^= 1 << (offset % 8);
                true
            }
            None => false,
        }
    }

    /// The live length of the file at `path`, if it exists.
    #[must_use]
    pub fn file_len(&self, path: &Path) -> Option<usize> {
        let (parent, name) = split(path).ok()?;
        let st = self.inner.lock();
        let &file = st.dirs.get(&parent)?.get(&name)?;
        Some(st.files[file].len())
    }

    /// The filesystem state a crash at journal `boundary` could leave
    /// behind under `plan`: durable state plus a seeded sample of the
    /// then-pending (unsynced) operations. Deterministic per
    /// `(plan.seed, boundary)`. The returned filesystem is fully
    /// independent of `self`.
    #[must_use]
    pub fn crash_image(&self, boundary: usize, plan: &FaultPlan) -> FaultFs {
        let st = self.inner.lock();
        let boundary = boundary.min(st.journal.len());
        let mut files = st.base_files.clone();
        files.resize(st.files.len(), Vec::new());
        let mut dirs = st.base_dirs.clone();

        // Replay: synced operations apply, the rest queue per target.
        let mut pending_file: BTreeMap<usize, Vec<&JournalOp>> = BTreeMap::new();
        let mut pending_dir: BTreeMap<PathBuf, Vec<&JournalOp>> = BTreeMap::new();
        for op in &st.journal[..boundary] {
            match op {
                JournalOp::Write { file, .. } | JournalOp::SetLen { file, .. } => {
                    pending_file.entry(*file).or_default().push(op);
                }
                JournalOp::SyncFile { file } => {
                    for op in pending_file.remove(file).unwrap_or_default() {
                        apply_file_op(&mut files, op);
                    }
                }
                JournalOp::Link { dir, .. }
                | JournalOp::Unlink { dir, .. }
                | JournalOp::Rename { dir, .. } => {
                    pending_dir.entry(dir.clone()).or_default().push(op);
                }
                JournalOp::SyncDir { dir } => {
                    for op in pending_dir.remove(dir).unwrap_or_default() {
                        apply_dir_op(&mut dirs, op);
                    }
                }
            }
        }

        // Survival sampling of whatever was still pending.
        let mut rng = Rng::new(plan.seed ^ (boundary as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for (_, ops) in pending_file {
            let survivors: Vec<&JournalOp> = if !plan.drop_unsynced_writes {
                ops
            } else if plan.reorder_unsynced_writes {
                ops.into_iter().filter(|_| rng.coin()).collect()
            } else {
                let keep = rng.below(ops.len() + 1);
                ops.into_iter().take(keep).collect()
            };
            let last = survivors.len().checked_sub(1);
            for (k, op) in survivors.iter().enumerate() {
                if plan.tear_writes && Some(k) == last {
                    if let JournalOp::Write { file, offset, data } = op {
                        let cut = rng.below(data.len() + 1);
                        apply_file_op(
                            &mut files,
                            &JournalOp::Write {
                                file: *file,
                                offset: *offset,
                                data: data[..cut].to_vec(),
                            },
                        );
                        continue;
                    }
                }
                apply_file_op(&mut files, op);
            }
        }
        for (_, ops) in pending_dir {
            let keep = if plan.drop_unsynced_dir_ops {
                rng.below(ops.len() + 1)
            } else {
                ops.len()
            };
            for op in ops.into_iter().take(keep) {
                apply_dir_op(&mut dirs, op);
            }
        }
        FaultFs::from_parts(files, dirs)
    }
}

/// An open append handle into a [`FaultFs`] file node. The handle
/// pins the node, not the name: appends keep landing in the same node
/// even after the name was renamed over or removed.
struct FaultFile {
    fs: FaultFs,
    file: usize,
}

impl VfsFile for FaultFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.fs.inner.lock();
        let offset = st.files[self.file].len();
        if st.faults.fail_appends {
            let half = buf.len() / 2;
            st.files[self.file].extend_from_slice(&buf[..half]);
            st.journal.push(JournalOp::Write {
                file: self.file,
                offset,
                data: buf[..half].to_vec(),
            });
            return Err(io::Error::other("injected fault: no space left on device"));
        }
        st.files[self.file].extend_from_slice(buf);
        st.journal.push(JournalOp::Write {
            file: self.file,
            offset,
            data: buf.to_vec(),
        });
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.fs
            .inner
            .lock()
            .journal
            .push(JournalOp::SyncFile { file: self.file });
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut st = self.fs.inner.lock();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "length overflow"))?;
        st.files[self.file].resize(len, 0);
        st.journal.push(JournalOp::SetLen {
            file: self.file,
            len,
        });
        Ok(())
    }

    fn byte_len(&self) -> io::Result<u64> {
        Ok(self.fs.inner.lock().files[self.file].len() as u64)
    }
}

impl Vfs for FaultFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation is modelled as immediately durable — the
        // durability directory exists long before the crash windows
        // under test, and journalling mkdir would only add boundaries
        // where nothing interesting can happen.
        let mut st = self.inner.lock();
        st.dirs.entry(dir.to_path_buf()).or_default();
        st.base_dirs.entry(dir.to_path_buf()).or_default();
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let (parent, name) = split(path)?;
        let st = self.inner.lock();
        if st.faults.fail_reads {
            return Err(io::Error::other(format!(
                "injected fault: I/O error reading {}",
                path.display()
            )));
        }
        let Some(&file) = st.dirs.get(&parent).and_then(|d| d.get(&name)) else {
            return Err(not_found(path));
        };
        let mut data = st.files[file].clone();
        if let Some(limit) = st.faults.short_read {
            data.truncate(limit);
        }
        Ok(data)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let (parent, name) = split(path)?;
        let mut st = self.inner.lock();
        if !st.dirs.contains_key(&parent) {
            return Err(not_found(&parent));
        }
        // A fresh node every time: the old node's content must stay
        // reachable by crash images in which this creation vanished.
        let file = st.files.len();
        st.files.push(Vec::new());
        if let Some(entries) = st.dirs.get_mut(&parent) {
            entries.insert(name.clone(), file);
        }
        st.journal.push(JournalOp::Link {
            dir: parent,
            name,
            file,
        });
        Ok(Box::new(FaultFile {
            fs: self.clone(),
            file,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let (parent, name) = split(path)?;
        {
            let st = self.inner.lock();
            if let Some(&file) = st.dirs.get(&parent).and_then(|d| d.get(&name)) {
                return Ok(Box::new(FaultFile {
                    fs: self.clone(),
                    file,
                }));
            }
        }
        self.create(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (from_dir, from_name) = split(from)?;
        let (to_dir, to_name) = split(to)?;
        if from_dir != to_dir {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "FaultFs models same-directory renames only",
            ));
        }
        let mut st = self.inner.lock();
        let Some(&file) = st.dirs.get(&from_dir).and_then(|d| d.get(&from_name)) else {
            return Err(not_found(from));
        };
        if let Some(entries) = st.dirs.get_mut(&from_dir) {
            entries.remove(&from_name);
            entries.insert(to_name.clone(), file);
        }
        st.journal.push(JournalOp::Rename {
            dir: from_dir,
            from: from_name,
            to: to_name,
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let (parent, name) = split(path)?;
        let mut st = self.inner.lock();
        let existed = st
            .dirs
            .get_mut(&parent)
            .is_some_and(|entries| entries.remove(&name).is_some());
        if !existed {
            return Err(not_found(path));
        }
        st.journal.push(JournalOp::Unlink { dir: parent, name });
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.lock().journal.push(JournalOp::SyncDir {
            dir: dir.to_path_buf(),
        });
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let st = self.inner.lock();
        let Some(entries) = st.dirs.get(dir) else {
            return Err(not_found(dir));
        };
        Ok(entries.keys().cloned().collect())
    }

    fn exists(&self, path: &Path) -> bool {
        let Ok((parent, name)) = split(path) else {
            return false;
        };
        let st = self.inner.lock();
        st.dirs.get(&parent).is_some_and(|d| d.contains_key(&name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PathBuf {
        PathBuf::from("/d")
    }

    fn write_all(fs: &FaultFs, path: &Path, data: &[u8], sync: bool) {
        let mut f = fs.create(path).unwrap();
        f.append(data).unwrap();
        if sync {
            f.sync_data().unwrap();
        }
    }

    #[test]
    fn os_like_basics_round_trip() {
        let fs = FaultFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let p = dir().join("a.txt");
        write_all(&fs, &p, b"hello", true);
        assert!(fs.exists(&p));
        assert_eq!(fs.read(&p).unwrap(), b"hello");
        assert_eq!(fs.list(&dir()).unwrap(), vec!["a.txt".to_string()]);

        let q = dir().join("b.txt");
        fs.rename(&p, &q).unwrap();
        assert!(!fs.exists(&p));
        assert_eq!(fs.read(&q).unwrap(), b"hello");
        fs.remove_file(&q).unwrap();
        assert!(fs.read(&q).is_err());
        assert!(fs.remove_file(&q).is_err());
    }

    #[test]
    fn synced_data_always_survives_a_crash() {
        let fs = FaultFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let p = dir().join("log");
        write_all(&fs, &p, b"durable", true);
        fs.sync_dir(&dir()).unwrap();
        let at = fs.boundaries();
        // Unsynced tail on top.
        let mut f = fs.open_append(&p).unwrap();
        f.append(b"-maybe").unwrap();

        for seed in 0..32 {
            let img = fs.crash_image(fs.boundaries(), &FaultPlan::chaos(seed));
            let data = img.read(&p).unwrap();
            assert!(data.starts_with(b"durable"), "synced prefix lost: {data:?}");
            assert!(data.len() <= b"durable-maybe".len());
            // Crash right at the durable boundary: exactly the prefix.
            let img = fs.crash_image(at, &FaultPlan::chaos(seed));
            assert_eq!(img.read(&p).unwrap(), b"durable");
        }
    }

    #[test]
    fn unsynced_directory_entries_can_vanish() {
        let fs = FaultFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let p = dir().join("new");
        write_all(&fs, &p, b"x", true); // file content synced, name not
        let mut vanished = false;
        for seed in 0..64 {
            let img = fs.crash_image(fs.boundaries(), &FaultPlan::chaos(seed));
            if !img.exists(&p) {
                vanished = true;
            }
        }
        assert!(vanished, "an unsynced creation never vanished");
        // After the directory fsync it always survives.
        fs.sync_dir(&dir()).unwrap();
        for seed in 0..64 {
            let img = fs.crash_image(fs.boundaries(), &FaultPlan::chaos(seed));
            assert_eq!(img.read(&p).unwrap(), b"x");
        }
    }

    #[test]
    fn unsynced_rename_can_unwind_but_old_content_is_preserved() {
        let fs = FaultFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let target = dir().join("cp");
        write_all(&fs, &target, b"old", true);
        fs.sync_dir(&dir()).unwrap();

        let tmp = dir().join("cp.tmp");
        write_all(&fs, &tmp, b"new", true);
        fs.rename(&tmp, &target).unwrap(); // not dir-synced
        let (mut saw_old, mut saw_new) = (false, false);
        for seed in 0..64 {
            let img = fs.crash_image(fs.boundaries(), &FaultPlan::chaos(seed));
            match img.read(&target).unwrap().as_slice() {
                b"old" => saw_old = true,
                b"new" => saw_new = true,
                other => panic!("target is neither old nor new: {other:?}"),
            }
        }
        assert!(
            saw_old && saw_new,
            "rename must be able to unwind (old={saw_old}, new={saw_new})"
        );
    }

    #[test]
    fn dropped_predecessor_write_zero_fills_the_gap() {
        let fs = FaultFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let p = dir().join("log");
        write_all(&fs, &p, b"", true);
        fs.sync_dir(&dir()).unwrap();
        let mut f = fs.open_append(&p).unwrap();
        f.append(&[1; 4]).unwrap();
        f.append(&[2; 4]).unwrap();
        let plan = FaultPlan {
            tear_writes: false,
            ..FaultPlan::chaos(0)
        };
        let mut saw_gap = false;
        for seed in 0..64 {
            let img = fs.crash_image(fs.boundaries(), &FaultPlan { seed, ..plan });
            let data = img.read(&p).unwrap();
            if data.len() == 8 && data[..4] == [0; 4] && data[4..] == [2; 4] {
                saw_gap = true;
            }
        }
        assert!(
            saw_gap,
            "reordered survivor never exposed a zero-filled gap"
        );
    }

    #[test]
    fn crash_images_are_deterministic_and_independent() {
        let fs = FaultFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let p = dir().join("f");
        write_all(&fs, &p, b"abcdef", false);
        let plan = FaultPlan::chaos(7);
        let a = fs.crash_image(fs.boundaries(), &plan);
        let b = fs.crash_image(fs.boundaries(), &plan);
        assert_eq!(
            a.read(&p).unwrap_or_default(),
            b.read(&p).unwrap_or_default(),
            "same (seed, boundary) must replay identically"
        );
        // Mutating the image must not touch the original.
        if a.exists(&p) {
            a.remove_file(&p).unwrap();
        }
        assert!(fs.exists(&p));
    }

    #[test]
    fn live_faults_inject_enospc_eio_short_reads_and_bit_rot() {
        let fs = FaultFs::new();
        fs.create_dir_all(&dir()).unwrap();
        let p = dir().join("f");
        write_all(&fs, &p, b"0123456789", true);

        fs.fail_appends(true);
        let mut f = fs.open_append(&p).unwrap();
        assert!(f.append(b"XXXX").is_err());
        fs.fail_appends(false);
        // The failed append tore: half the buffer landed.
        assert_eq!(fs.read(&p).unwrap(), b"0123456789XX");

        fs.fail_reads(true);
        assert!(fs.read(&p).is_err());
        fs.fail_reads(false);

        fs.short_reads(Some(3));
        assert_eq!(fs.read(&p).unwrap(), b"012");
        fs.short_reads(None);

        assert!(fs.corrupt(&p, 0));
        assert_ne!(fs.read(&p).unwrap()[0], b'0');
        assert!(!fs.corrupt(&p, 10_000));
    }
}
