//! The broker's durability engine: WAL appends, generational
//! checkpoints, and the corruption-tolerant recovery chain.
//!
//! A child module of `broker` so it can reach the broker's private
//! state; it owns every byte that crosses the [`Vfs`] boundary. Three
//! properties the code below maintains, in order of importance:
//!
//! 1. **Acknowledged state survives any crash** (under
//!    [`FsyncPolicy::Always`]): a record is acknowledged only after
//!    its frame is fsynced into a WAL whose directory entry was
//!    fsynced at creation, and a checkpoint exists only after its
//!    rename was fsynced in the parent directory. The crash-point
//!    oracle in `tests/storage_faults.rs` enumerates every journal
//!    boundary under seeded fault plans to enforce this.
//! 2. **Recovery degrades gracefully, never silently**: a corrupt
//!    newest checkpoint falls back one generation (counted in
//!    [`MetricsSnapshot::checkpoint_fallbacks`]); a corrupt interior
//!    WAL frame is skipped by salvage (counted in
//!    `wal_salvaged_frames` / `wal_quarantined_bytes`); and if *no*
//!    consistent state can be assembled, recovery fails loudly rather
//!    than returning a partial broker.
//! 3. **A sick disk does not poison the match path**: a WAL append
//!    failure (ENOSPC, EIO) flips `durability_degraded`, fails the
//!    *mutating* call, and leaves the broker serving reads and
//!    publishes; a later successful checkpoint (which captures the
//!    full in-memory state, un-logged changes included) clears the
//!    flag.
//!
//! Lock order: shard writer mutexes (index order) → WAL mutex →
//! generation-table mutex.
//!
//! [`MetricsSnapshot::checkpoint_fallbacks`]: crate::MetricsSnapshot::checkpoint_fallbacks

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::notify::Subscriber;
use crate::persist::{
    self, Checkpoint, CheckpointEntry, CheckpointShard, DurabilityConfig, FsyncPolicy, WalRecord,
    WalScan,
};
use crate::subscription::SubscriptionId;
use crate::vfs::VfsFile;
use crate::ServiceError;

use super::{Broker, Recovered, SubEntry};

pub(super) fn io_persist(e: std::io::Error) -> ServiceError {
    ServiceError::Persist(e.to_string())
}

fn persist_err(e: ens_filter::persist::PersistError) -> ServiceError {
    ServiceError::Persist(e.message().to_string())
}

/// Mutable write-ahead-log state, guarded by [`Durability::wal`].
pub(super) struct WalState {
    file: Box<dyn VfsFile>,
    /// LSN the next appended record will carry (LSNs start at 1).
    next_lsn: u64,
    /// Records appended since the last checkpoint (drives the
    /// automatic checkpoint trigger).
    since_checkpoint: u64,
    /// The log's length in fully-appended bytes — the rollback target
    /// when an append tears mid-frame.
    len: u64,
}

/// The checkpoint generations currently on disk, ascending. The
/// covered LSN is known only for generations written (or recovered
/// from) in this process; `None` marks a generation that merely
/// exists, which the WAL-trim floor treats conservatively (trim
/// nothing).
#[derive(Default)]
pub(super) struct GenTable {
    entries: Vec<(u64, Option<u64>)>,
}

impl GenTable {
    fn newest(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.0)
    }

    fn insert(&mut self, gen: u64, last_lsn: Option<u64>) {
        self.entries.retain(|(g, _)| *g != gen);
        self.entries.push((gen, last_lsn));
        self.entries.sort_unstable_by_key(|(g, _)| *g);
    }

    /// Removes and returns the generations outside the retention
    /// window `(newest - keep, newest]`.
    fn retire(&mut self, keep: u64) -> Vec<u64> {
        let newest = self.newest();
        if newest < keep {
            return Vec::new();
        }
        let cut = newest - keep;
        let retired = self
            .entries
            .iter()
            .filter(|(g, _)| *g <= cut)
            .map(|(g, _)| *g)
            .collect();
        self.entries.retain(|(g, _)| *g > cut);
        retired
    }

    /// The highest LSN the WAL may be trimmed past: the minimum LSN
    /// covered by the generations in the retention window. `0` (trim
    /// nothing) when the window reaches the empty-state origin or
    /// contains a generation whose coverage is unknown — conservative
    /// in both cases, so a fallback recovery can always replay
    /// forward from the oldest retained generation.
    fn floor(&self, keep: u64) -> u64 {
        let newest = self.newest();
        if newest < keep {
            return 0;
        }
        let mut floor = u64::MAX;
        for gen in (newest - keep + 1)..=newest {
            match self.entries.iter().find(|(g, _)| *g == gen) {
                Some((_, Some(lsn))) => floor = floor.min(*lsn),
                _ => return 0,
            }
        }
        floor
    }
}

/// The broker's durability layer (present only on brokers opened with
/// [`Broker::open`]).
pub(super) struct Durability {
    pub(super) config: DurabilityConfig,
    wal: Mutex<WalState>,
    /// Set when `since_checkpoint` crosses the configured interval;
    /// consumed by [`Broker::maybe_checkpoint`] once all writer locks
    /// are released (a WAL append happens under a writer lock, and the
    /// checkpoint needs them all).
    checkpoint_due: AtomicBool,
    gens: Mutex<GenTable>,
}

impl Broker {
    /// Opens (or creates) a durable broker rooted at
    /// [`DurabilityConfig::dir`].
    ///
    /// Recovery chain: stale staging files (`checkpoint.tmp`,
    /// `wal.tmp`) are removed; the checkpoint generations on disk are
    /// tried newest-first and the first CRC-valid one is loaded —
    /// every shard's compiled filter arenas, its active
    /// [`TreeConfig`](ens_filter::TreeConfig) (accepted retunes
    /// included) and its subscription entries restored exactly as
    /// serialized, without recompiling — while corrupt newer
    /// generations are counted as fallbacks and deleted. Generations
    /// older than the retention window are cleaned up. Then the WAL is
    /// scanned ([`persist::salvage_wal`] when
    /// [`DurabilityConfig::salvage`] is on, [`persist::decode_wal`]
    /// otherwise) and every record with an LSN above the checkpoint's
    /// is replayed. A torn tail is truncated and logging resumes from
    /// the surviving prefix; a checkpoint followed by a crash *before*
    /// the log was trimmed replays idempotently (records at or below
    /// the checkpoint LSN are skipped, and a subscribe for an id that
    /// is already live is a no-op).
    ///
    /// If every generation on disk is corrupt, recovery proceeds from
    /// the empty state only when the WAL reaches back to LSN 1 —
    /// otherwise it fails loudly instead of resurrecting a partial
    /// history.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Persist`] for I/O failures, durable
    /// state that cannot be assembled into a consistent broker, or
    /// state that does not belong to `schema` / the configured shard
    /// count; propagates filter errors from replayed operations.
    pub fn open(
        schema: &ens_types::Schema,
        config: super::BrokerConfig,
        durability: DurabilityConfig,
    ) -> Result<Recovered, ServiceError> {
        let vfs = Arc::clone(&durability.vfs);
        let dir = durability.dir.clone();
        let strict_sync = durability.fsync != FsyncPolicy::Never;
        vfs.create_dir_all(&dir).map_err(io_persist)?;

        // Crash leftovers from an interrupted checkpoint or WAL trim.
        // Best-effort: a failed removal only leaves clutter behind.
        let mut dirty_dir = false;
        for stale in [persist::CHECKPOINT_TMP_FILE, persist::WAL_TMP_FILE] {
            let path = dir.join(stale);
            if vfs.exists(&path) && vfs.remove_file(&path).is_ok() {
                dirty_dir = true;
            }
        }

        // Try the generations newest-first.
        let mut gens: Vec<u64> = vfs
            .list(&dir)
            .map_err(io_persist)?
            .iter()
            .filter_map(|name| persist::parse_checkpoint_gen(name))
            .collect();
        gens.sort_unstable_by(|a, b| b.cmp(a));
        let mut fallbacks = 0u64;
        let mut removed: Vec<u64> = Vec::new();
        let mut chosen: Option<(u64, Checkpoint)> = None;
        for &gen in &gens {
            let path = dir.join(persist::checkpoint_gen_file(gen));
            match vfs.read(&path) {
                Ok(bytes) => match Checkpoint::from_bytes(&bytes) {
                    Ok(cp) => {
                        chosen = Some((gen, cp));
                        break;
                    }
                    Err(_) => {
                        // Bit rot or a torn staging write that still
                        // got renamed: fall back a generation and
                        // clear the damaged file out of the chain.
                        fallbacks += 1;
                        if vfs.remove_file(&path).is_ok() {
                            removed.push(gen);
                            dirty_dir = true;
                        }
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                // A transient read error (EIO) is not corruption:
                // fall back without destroying the file.
                Err(_) => fallbacks += 1,
            }
        }
        let all_generations_corrupt = chosen.is_none() && fallbacks > 0;

        // Orphaned generations below the retention window.
        let keep = durability.checkpoint_generations.max(1) as u64;
        if let Some((chosen_gen, _)) = &chosen {
            for &old in gens.iter().filter(|&&g| g + keep <= *chosen_gen) {
                if vfs
                    .remove_file(&dir.join(persist::checkpoint_gen_file(old)))
                    .is_ok()
                {
                    removed.push(old);
                    dirty_dir = true;
                }
            }
        }
        if dirty_dir && strict_sync {
            let _ = vfs.sync_dir(&dir);
        }

        let chosen_gen = chosen.as_ref().map(|(g, _)| *g);
        let last_lsn = chosen.as_ref().map_or(0, |(_, cp)| cp.last_lsn);
        let mut subscribers: BTreeMap<u64, Subscriber> = BTreeMap::new();
        let mut broker = match chosen {
            Some((_, cp)) => Self::from_checkpoint(schema, config, cp, &mut subscribers)?,
            None => Self::new(schema, config)?,
        };

        let wal_path = dir.join(persist::WAL_FILE);
        let wal_bytes = match vfs.read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_persist(e)),
        };
        let scan = if durability.salvage {
            persist::salvage_wal(&wal_bytes)
        } else {
            persist::decode_wal(&wal_bytes)
        };
        if all_generations_corrupt && scan.records.first().map(WalRecord::lsn) != Some(1) {
            return Err(ServiceError::Persist(
                "every checkpoint generation is corrupt and the WAL does not reach \
                 back to LSN 1; refusing to recover a partial state"
                    .into(),
            ));
        }
        let WalScan {
            records,
            offsets,
            consumed,
            torn,
            salvaged,
            quarantined,
        } = scan;
        let mut max_lsn = last_lsn;
        let mut max_sub = None;
        for record in records {
            max_lsn = max_lsn.max(record.lsn());
            if record.lsn() <= last_lsn {
                continue;
            }
            match record {
                WalRecord::Subscribe {
                    id,
                    weight,
                    profile,
                    ..
                } => {
                    max_sub = max_sub.max(Some(id));
                    let sid = SubscriptionId::new(id);
                    if broker.is_live(sid) {
                        continue;
                    }
                    let sub = broker.commit_subscribe(sid, profile, weight)?;
                    subscribers.insert(id, sub);
                }
                WalRecord::Unsubscribe { id, .. } => {
                    max_sub = max_sub.max(Some(id));
                    match broker.remove_subscription(SubscriptionId::new(id)) {
                        Ok(()) => {
                            subscribers.remove(&id);
                        }
                        // A lost in-memory state change (its record was
                        // torn off) or a replay of the checkpoint
                        // window: already gone, nothing to undo.
                        Err(ServiceError::UnknownSubscription(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                WalRecord::Retune {
                    shard,
                    attribute_order,
                    search,
                    event_model,
                    ..
                } => {
                    broker.apply_retune(shard as usize, attribute_order, search, event_model)?;
                }
            }
        }
        // Never re-issue an id that was durably handed out.
        let floor = max_sub.map_or(0, |id| id + 1);
        if broker.next_sub.load(Ordering::Relaxed) < floor {
            broker.next_sub.store(floor, Ordering::Relaxed);
        }

        let creating = !vfs.exists(&wal_path);
        let mut file = vfs.open_append(&wal_path).map_err(io_persist)?;
        if creating && strict_sync {
            // The WAL's *name* is durable only once the directory
            // entry is synced; without this, a crash after the first
            // acknowledged append could forget the whole log file.
            vfs.sync_dir(&dir).map_err(io_persist)?;
        }
        if torn {
            // Drop the torn tail so resumed appends extend the valid
            // prefix instead of burying garbage mid-log.
            file.set_len(consumed as u64).map_err(io_persist)?;
        }
        broker
            .metrics
            .wal_salvaged_frames
            .store(salvaged, Ordering::Relaxed);
        broker
            .metrics
            .wal_quarantined_bytes
            .store(quarantined, Ordering::Relaxed);
        broker
            .metrics
            .checkpoint_fallbacks
            .store(fallbacks, Ordering::Relaxed);

        let mut table = GenTable::default();
        for &gen in gens.iter().rev() {
            if removed.contains(&gen) {
                continue;
            }
            let lsn = (Some(gen) == chosen_gen).then_some(last_lsn);
            table.insert(gen, lsn);
        }
        broker.durability = Some(Durability {
            config: durability,
            wal: Mutex::new(WalState {
                file,
                next_lsn: max_lsn + 1,
                since_checkpoint: offsets.len() as u64,
                len: consumed as u64,
            }),
            checkpoint_due: AtomicBool::new(false),
            gens: Mutex::new(table),
        });
        Ok(Recovered {
            broker,
            subscribers: subscribers.into_values().collect(),
        })
    }

    /// Appends one record to the WAL (no-op on in-memory brokers).
    /// May be called with a shard writer lock held — the WAL lock
    /// nests inside writer locks, never the other way around.
    ///
    /// A failed append flips
    /// [`MetricsSnapshot::durability_degraded`](crate::MetricsSnapshot::durability_degraded)
    /// and rolls the partial frame back; the caller decides whether
    /// its operation must fail (subscribe/unsubscribe acks) or can
    /// proceed degraded (publish-path bookkeeping).
    pub(super) fn wal_log(&self, make: impl FnOnce(u64) -> WalRecord) -> Result<(), ServiceError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let mut wal = d.wal.lock();
        let frame = match persist::encode_frame(&make(wal.next_lsn)) {
            Ok(frame) => frame,
            Err(e) => {
                self.metrics.durability_degraded.store(1, Ordering::Relaxed);
                return Err(persist_err(e));
            }
        };
        if let Err(e) = wal.file.append(&frame) {
            // The append may have torn mid-frame (a real ENOSPC does):
            // drop the partial bytes so a later successful append
            // extends a clean frame boundary. Salvage covers the case
            // where even the rollback fails.
            self.metrics.durability_degraded.store(1, Ordering::Relaxed);
            let len = wal.len;
            let _ = wal.file.set_len(len);
            return Err(io_persist(e));
        }
        wal.len += frame.len() as u64;
        wal.next_lsn += 1;
        wal.since_checkpoint += 1;
        if d.config.fsync == FsyncPolicy::Always {
            if let Err(e) = wal.file.sync_data() {
                // The frame is written but its durability is unknown;
                // the LSN stays consumed (recovery may legitimately
                // surface the record) and the ack fails.
                self.metrics.durability_degraded.store(1, Ordering::Relaxed);
                return Err(io_persist(e));
            }
        }
        if d.config.checkpoint_every > 0 && wal.since_checkpoint >= d.config.checkpoint_every {
            // Only flag it: the caller may hold a shard writer lock,
            // and the checkpoint needs all of them.
            d.checkpoint_due.store(true, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Runs the automatic checkpoint if one is due. Must be called
    /// with no shard writer lock held. Infallible by design: an
    /// automatic checkpoint failure must not poison the publish or
    /// subscribe call that happened to trigger it — the broker keeps
    /// serving with `durability_degraded` set, and the next interval
    /// (or an explicit [`Broker::checkpoint`]) retries.
    pub(super) fn maybe_checkpoint(&self) {
        let Some(d) = &self.durability else {
            return;
        };
        if d.checkpoint_due.swap(false, Ordering::Relaxed) && self.write_checkpoint(true).is_err() {
            self.metrics.durability_degraded.store(1, Ordering::Relaxed);
        }
    }

    /// Writes a checkpoint of the full broker state into a fresh
    /// generation and trims the WAL to what the retained generations
    /// still need. Returns `false` (doing nothing) on in-memory
    /// brokers. On success the `durability_degraded` flag clears: the
    /// image captured the complete in-memory state, including changes
    /// whose WAL appends had failed.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Persist`] on I/O failure. The
    /// checkpoint is staged under a temporary name, renamed into
    /// place and made durable with a parent-directory fsync, so a
    /// crash mid-write leaves the previous generations intact.
    pub fn checkpoint(&self) -> Result<bool, ServiceError> {
        self.write_checkpoint(true)
    }

    /// Like [`Broker::checkpoint`], but leaves the WAL untrimmed —
    /// this widens the checkpoint-then-crash-before-truncate window
    /// on purpose, for crash-recovery testing. Replay after recovery
    /// skips the records the checkpoint already covers.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Persist`] on I/O failure.
    pub fn checkpoint_keep_wal(&self) -> Result<bool, ServiceError> {
        self.write_checkpoint(false)
    }

    fn write_checkpoint(&self, trim_wal: bool) -> Result<bool, ServiceError> {
        let Some(d) = &self.durability else {
            return Ok(false);
        };
        let vfs = &d.config.vfs;
        let dir = &d.config.dir;
        let strict_sync = d.config.fsync != FsyncPolicy::Never;
        // Freeze every shard (writer locks in index order), then the
        // log: everything at or below the captured LSN is in the
        // image, everything after it will replay on top.
        let writers: Vec<_> = self.shards.iter().map(|s| s.writer.lock()).collect();
        let mut wal = d.wal.lock();
        let entry = |e: &SubEntry, tombstoned: bool| CheckpointEntry {
            id: e.id.get(),
            weight: e.weight,
            tombstoned,
            profile: e.profile.clone(),
        };
        let shards = self
            .shards
            .iter()
            .zip(&writers)
            .map(|(shard, w)| CheckpointShard {
                tree: w.tree.clone(),
                filter: shard.snapshot.read().filter.to_bytes(),
                base: w
                    .base
                    .iter()
                    .zip(&w.removed)
                    .map(|(e, r)| entry(e, *r))
                    .collect(),
                overlay: w.overlay.iter().map(|e| entry(e, false)).collect(),
            })
            .collect();
        let last_lsn = wal.next_lsn - 1;
        let cp = Checkpoint {
            schema: (*self.schema).clone(),
            last_lsn,
            next_sub: self.next_sub.load(Ordering::Relaxed),
            sequence: self.sequence.load(Ordering::Relaxed),
            shards,
        };
        // An unencodable profile degrades to an error (the previous
        // generations stay intact and the WAL keeps growing) instead
        // of panicking with every writer lock held.
        let bytes = cp.to_bytes().map_err(persist_err)?;
        drop(writers);

        let mut gens = d.gens.lock();
        let gen = gens.newest() + 1;
        let tmp = dir.join(persist::CHECKPOINT_TMP_FILE);
        {
            let mut f = vfs.create(&tmp).map_err(io_persist)?;
            f.append(&bytes).map_err(io_persist)?;
            if strict_sync {
                f.sync_data().map_err(io_persist)?;
            }
        }
        vfs.rename(&tmp, &dir.join(persist::checkpoint_gen_file(gen)))
            .map_err(io_persist)?;
        if strict_sync {
            // The rename is durable only once the directory entry is
            // synced; until then a crash can resurrect the previous
            // generation under this name — which recovery tolerates,
            // but the *acknowledged* checkpoint must stick.
            vfs.sync_dir(dir).map_err(io_persist)?;
        }
        gens.insert(gen, Some(last_lsn));

        // Retire generations that fell out of the retention window,
        // then trim the WAL to what the remaining window still needs.
        let keep = d.config.checkpoint_generations.max(1) as u64;
        let mut dirty_dir = false;
        for old in gens.retire(keep) {
            if vfs
                .remove_file(&dir.join(persist::checkpoint_gen_file(old)))
                .is_ok()
            {
                dirty_dir = true;
            }
        }
        if trim_wal {
            self.rewrite_wal(d, &mut wal, gens.floor(keep))?;
            wal.since_checkpoint = 0;
        }
        if dirty_dir && strict_sync {
            vfs.sync_dir(dir).map_err(io_persist)?;
        }
        d.checkpoint_due.store(false, Ordering::Relaxed);
        self.metrics.durability_degraded.store(0, Ordering::Relaxed);
        Ok(true)
    }

    /// Rewrites the WAL keeping only records with LSN above `floor`
    /// (what the oldest retained checkpoint generation still needs
    /// for replay), via temp file + rename + directory fsync. With a
    /// single retained generation this empties the log, matching the
    /// pre-generational truncate-on-checkpoint behaviour.
    fn rewrite_wal(
        &self,
        d: &Durability,
        wal: &mut WalState,
        floor: u64,
    ) -> Result<(), ServiceError> {
        let vfs = &d.config.vfs;
        let dir = &d.config.dir;
        let strict_sync = d.config.fsync != FsyncPolicy::Never;
        let wal_path = dir.join(persist::WAL_FILE);
        let bytes = match vfs.read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_persist(e)),
        };
        let scan = if d.config.salvage {
            persist::salvage_wal(&bytes)
        } else {
            persist::decode_wal(&bytes)
        };
        let kept: Vec<&WalRecord> = scan.records.iter().filter(|r| r.lsn() > floor).collect();
        if kept.len() == scan.records.len() && scan.consumed == bytes.len() {
            // Nothing to drop and no garbage to clear out.
            return Ok(());
        }
        let mut out = Vec::new();
        for record in &kept {
            out.extend_from_slice(&persist::encode_frame(record).map_err(persist_err)?);
        }
        let tmp = dir.join(persist::WAL_TMP_FILE);
        {
            let mut f = vfs.create(&tmp).map_err(io_persist)?;
            if !out.is_empty() {
                f.append(&out).map_err(io_persist)?;
            }
            if strict_sync {
                f.sync_data().map_err(io_persist)?;
            }
        }
        vfs.rename(&tmp, &wal_path).map_err(io_persist)?;
        if strict_sync {
            vfs.sync_dir(dir).map_err(io_persist)?;
        }
        wal.file = vfs.open_append(&wal_path).map_err(io_persist)?;
        wal.len = out.len() as u64;
        Ok(())
    }
}
