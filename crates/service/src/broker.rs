//! The notification broker: subscriptions in, events in, notifications
//! out — with the adaptive distribution-based filter in the middle.
//!
//! # Concurrency model
//!
//! The broker is built for many concurrent producers (paper §5: GENAS
//! serves "a huge number of profiles" and an event stream to match):
//!
//! * **Snapshot-swap read path** — each shard compiles its subscription
//!   set into an immutable [`FilterSnapshot`] plus a dispatch table,
//!   shared behind an `Arc`. `publish` clones the handle (one brief,
//!   uncontended read-lock acquisition), then matches **lock-free**
//!   against the snapshot using thread-local scratch buffers; after
//!   warm-up the matching step performs no heap allocation.
//! * **Incremental subscription deltas** — `subscribe` puts the new
//!   profile into a small overlay side-matcher (O(overlay), independent
//!   of the total subscription count) and `unsubscribe` tombstones
//!   compiled profiles; the expensive tree rebuild runs only when the
//!   [`RebuildPolicy`] thresholds or its adaptive drift trigger fire.
//! * **Sharded dispatch** — subscriptions are partitioned across
//!   [`BrokerConfig::shards`] shards, each with its own snapshot,
//!   writer lock and drift statistics, so churn and rebuilds on one
//!   shard never stall the others. [`Broker::publish_batch`] fans a
//!   batch out across shards on `std::thread` workers.
//!
//! Ordering: within one publisher thread (and within a batch),
//! notifications reach each subscriber in sequence order. Across
//! concurrent publishers the [`Notification::sequence`] numbers define
//! the total publish order; deliveries may interleave.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ens_dist::JointDist;
use ens_filter::{
    AttributeOrder, DriftTracker, FilterSnapshot, RebuildPolicy, SearchStrategy,
    SnapshotBlockScratch, SnapshotScratch, TreeConfig, TuningPolicy,
};
use ens_types::{
    CoverOutcome, CoverSet, Event, IndexedBatch, IndexedEvent, Profile, ProfileBuilder, ProfileId,
    ProfileSet, Residual, Schema, TypesError,
};
use parking_lot::{Mutex, RwLock};

use crate::channel::{self, OverflowPolicy, SendOutcome, Sender};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::notify::{Notification, Subscriber};
use crate::persist::{self, Checkpoint, WalRecord};
use crate::quench::QuenchAdvice;
use crate::subscription::SubscriptionId;
use crate::ServiceError;

#[path = "durability.rs"]
mod durability;

use durability::Durability;

/// Broker configuration.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Filter tree configuration (search strategy, attribute order).
    pub tree: TreeConfig,
    /// Unified rebuild policy: overlay/tombstone compaction thresholds
    /// plus the adaptive drift trigger. `max_overlay: 0` restores the
    /// seed's rebuild-on-every-subscribe behaviour.
    pub rebuild: RebuildPolicy,
    /// How many recent events to keep for inspection (0 disables).
    pub history_capacity: usize,
    /// Drop events in the zero-subdomain before filtering (broker-side
    /// quenching; producers can do the same with
    /// [`Broker::quench_advice`]). Only active while a shard's overlay
    /// is empty — overlay profiles are not part of the compiled
    /// coverage map, so quenching pauses (conservatively) until the
    /// next compaction.
    pub quench_inbound: bool,
    /// Number of subscription shards (0 is treated as 1). Each shard
    /// owns an independent snapshot, writer lock and drift statistics;
    /// `publish_batch` fans out one worker thread per shard.
    pub shards: usize,
    /// Match the compiled base through the flattened DFSA instead of
    /// the profile tree: fastest dispatch, but the base's comparison
    /// operations are not counted — `PublishReceipt::ops` then only
    /// reflects overlay matching (0 once the overlay is compacted).
    pub dfsa_dispatch: bool,
    /// Record every Nth published event into the per-shard drift
    /// statistics (1 = every event, the seed behaviour; 0 disables
    /// drift tracking entirely). Recording takes a per-shard `try_lock`
    /// — under contention a sample is skipped rather than stalling the
    /// publisher.
    pub stats_sample: u64,
    /// Self-tuning policy. When enabled (e.g.
    /// [`TuningPolicy::standard`]), a drift trigger no longer rebuilds
    /// the stale configuration blindly: the broker prices the candidate
    /// (search-strategy, attribute-order) configurations under the
    /// shard's online distribution estimate and commits a retuned
    /// snapshot only when the predicted cost improvement clears
    /// [`TuningPolicy::min_improvement`] — otherwise the rebuild is
    /// declined and the drift detector re-arms. The default (disabled)
    /// keeps the pre-tuning behaviour: drift rebuilds reuse the
    /// configured tree shape with a refreshed event model.
    pub tuning: TuningPolicy,
    /// Covering-pruned compilation: every compaction runs one bulk
    /// containment pass over the live population and compiles only the
    /// representative antichain into the tree/DFSA; covered
    /// subscriptions are delivered through the snapshot's expansion
    /// map instead. A subscribe whose profile is covered by a compiled
    /// representative joins the expansion map in O(schema) hash probes
    /// and adds **zero** matching cost. On duplicate-heavy populations
    /// this shrinks build time and compiled bytes by the coverage
    /// factor; on antichain populations (nothing covers anything) the
    /// pass degrades to one lowering sweep. Default on.
    pub covering: bool,
    /// Capacity of each subscriber's notification channel; `0` means
    /// unbounded (the default, matching the seed behaviour). With a
    /// bound, a consumer that stops draining can hold at most this
    /// many notifications — overflow is resolved by
    /// [`BrokerConfig::overflow`] and counted in
    /// [`MetricsSnapshot::overflow_dropped`].
    pub notify_capacity: usize,
    /// What a full subscriber channel does with the next notification
    /// (only meaningful with `notify_capacity > 0`).
    pub overflow: OverflowPolicy,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            tree: TreeConfig::default(),
            rebuild: RebuildPolicy::default(),
            history_capacity: 0,
            quench_inbound: false,
            shards: 1,
            dfsa_dispatch: false,
            stats_sample: 1,
            tuning: TuningPolicy::default(),
            covering: true,
            notify_capacity: 0,
            overflow: OverflowPolicy::default(),
        }
    }
}

/// Receipt returned by [`Broker::publish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReceipt {
    /// Publish-order sequence number of the event.
    pub sequence: u64,
    /// Subscriptions notified by this event (ascending id; empty if
    /// quenched).
    pub matched: Vec<SubscriptionId>,
    /// Comparison operations spent filtering: tree plus overlay ops (0
    /// if quenched; with [`BrokerConfig::dfsa_dispatch`] the compiled
    /// base counts no ops, so only overlay matching contributes).
    pub ops: u64,
    /// Whether the inbound quench pre-filter dropped the event.
    pub quenched: bool,
}

struct SubEntry {
    id: SubscriptionId,
    profile: Profile,
    weight: f64,
    sender: Sender<Notification>,
}

/// One dispatch slot, aligned with the snapshot's global profile ids.
struct DispatchEntry {
    id: SubscriptionId,
    sender: Sender<Notification>,
}

/// The immutable per-shard artifact the read path consumes.
struct ShardSnapshot {
    filter: FilterSnapshot,
    /// Dispatch for compiled profiles (dense tree ids, tombstones
    /// included so indices stay aligned).
    base_dispatch: Arc<Vec<DispatchEntry>>,
    /// Dispatch for overlay profiles.
    overlay_dispatch: Arc<Vec<DispatchEntry>>,
    /// Pre-computed quenching advice; `None` disables inbound
    /// quenching for this snapshot (overlay pending, or quenching off).
    quench: Option<Arc<QuenchAdvice>>,
}

impl ShardSnapshot {
    fn entry(&self, gpid: u32) -> &DispatchEntry {
        let gpid = gpid as usize;
        let base = self.filter.base_len();
        if gpid < base {
            &self.base_dispatch[gpid]
        } else {
            &self.overlay_dispatch[gpid - base]
        }
    }
}

/// Why a compaction ran (metrics attribution).
#[derive(Clone, Copy, PartialEq)]
enum CompactReason {
    Churn,
    Drift,
}

/// Writer-side state of one shard, guarded by its `Mutex`.
struct ShardWriter {
    /// Compiled subscriptions, aligned with the snapshot's base profile
    /// ids (tombstoned entries stay until compaction).
    base: Vec<SubEntry>,
    /// Subscriptions that arrived since the last compaction, aligned
    /// with overlay profile ids.
    overlay: Vec<SubEntry>,
    removed: Vec<bool>,
    removed_count: usize,
    /// Containment index over the compiled base, rebuilt by every
    /// compaction when [`BrokerConfig::covering`] is on. Slot `s` is
    /// the index into `base`: compaction rebuilds both in the same
    /// order and `base` is append-free between compactions, so the
    /// alignment holds until the next rebuild.
    cover: Option<CoverSet>,
    /// Covering outcome per overlay position, parallel to `overlay`:
    /// `Some((compiled representative id, residual))` for entries the
    /// probe found covered, `None` for uncovered (index-matched) ones.
    /// Maintained in lock-step with `overlay` on every push/remove,
    /// covering on or off.
    overlay_cover: Vec<Option<(u32, Vec<Residual>)>>,
    /// Compaction pressure from antichain inversions: uncovered
    /// subscribes that themselves cover already-compiled
    /// representatives. Folding them in would shrink the compiled
    /// tree, so each dominated representative counts toward the
    /// overlay-full threshold on top of the overlay length.
    antichain_dirty: usize,
    tracker: DriftTracker,
    /// The shard's *active* tree configuration. Starts as
    /// [`BrokerConfig::tree`]; an accepted retune replaces its
    /// attribute order and search strategy, so every later compaction
    /// (churn or drift) keeps compiling the tuned shape.
    tree: TreeConfig,
}

impl ShardWriter {
    fn live_count(&self) -> usize {
        self.base.len() - self.removed_count + self.overlay.len()
    }

    /// The live profile set (non-tombstoned base + overlay), in
    /// compaction order.
    fn live_profiles(&self, schema: &Schema) -> ProfileSet {
        let mut ps = ProfileSet::new(schema);
        for e in self
            .base
            .iter()
            .enumerate()
            .filter(|(k, _)| !self.removed[*k])
            .map(|(_, e)| e)
            .chain(self.overlay.iter())
        {
            ps.insert(e.profile.clone());
        }
        ps
    }

    fn overlay_profiles(&self, schema: &Schema) -> ProfileSet {
        let mut ps = ProfileSet::new(schema);
        for e in &self.overlay {
            ps.insert(e.profile.clone());
        }
        ps
    }

    fn overlay_dispatch(&self) -> Arc<Vec<DispatchEntry>> {
        Arc::new(
            self.overlay
                .iter()
                .map(|e| DispatchEntry {
                    id: e.id,
                    sender: e.sender.clone(),
                })
                .collect(),
        )
    }

    /// Rebuilds the base dispatch table from the writer's entries —
    /// used after a tombstoned entry's sender was swapped out, so the
    /// cancelled channel is released as soon as older snapshots retire.
    fn base_dispatch(&self) -> Arc<Vec<DispatchEntry>> {
        Arc::new(
            self.base
                .iter()
                .map(|e| DispatchEntry {
                    id: e.id,
                    sender: e.sender.clone(),
                })
                .collect(),
        )
    }

    /// Shared quench policy for incremental snapshots: base partitions
    /// only cover compiled profiles, so quenching pauses while the
    /// overlay is non-empty (tombstones stay conservative).
    fn delta_quench(
        &self,
        prev: &ShardSnapshot,
        filter: &FilterSnapshot,
        schema: &Schema,
        quench_inbound: bool,
    ) -> Option<Arc<QuenchAdvice>> {
        if quench_inbound && self.overlay.is_empty() {
            prev.quench.clone().or_else(|| {
                Some(Arc::new(QuenchAdvice::from_partitions(
                    schema,
                    filter.partitions(),
                )))
            })
        } else {
            None
        }
    }

    /// Incremental snapshot after an overlay change: shares the
    /// compiled base *and* the tombstone set of `prev` — cost
    /// O(overlay), independent of the compiled subscription count.
    fn delta_snapshot(
        &self,
        prev: &ShardSnapshot,
        schema: &Schema,
        quench_inbound: bool,
    ) -> Result<ShardSnapshot, ServiceError> {
        let overlay = self.overlay_profiles(schema);
        let filter = if self.cover.is_some() {
            prev.filter
                .with_overlay_covered(&overlay, &self.overlay_cover)?
        } else {
            prev.filter.with_overlay(&overlay)?
        };
        let quench = self.delta_quench(prev, &filter, schema, quench_inbound);
        Ok(ShardSnapshot {
            filter,
            base_dispatch: Arc::clone(&prev.base_dispatch),
            overlay_dispatch: self.overlay_dispatch(),
            quench,
        })
    }

    /// Incremental snapshot after tombstone changes: replaces the
    /// tombstone bitmap and rebuilds the base dispatch (releasing
    /// swapped-out senders); the compiled base and overlay are shared.
    fn tombstone_snapshot(
        &self,
        prev: &ShardSnapshot,
        schema: &Schema,
        quench_inbound: bool,
    ) -> ShardSnapshot {
        let filter = prev.filter.with_removed(self.removed.clone());
        let quench = self.delta_quench(prev, &filter, schema, quench_inbound);
        ShardSnapshot {
            filter,
            base_dispatch: self.base_dispatch(),
            overlay_dispatch: Arc::clone(&prev.overlay_dispatch),
            quench,
        }
    }

    /// Full rebuild: folds the overlay in, drops tombstones, recompiles
    /// the tree with the shard's active configuration and the current
    /// empirical event model (or, before any event was observed for the
    /// current geometry, the configured model acting as a prior).
    fn compact(
        &mut self,
        schema: &Schema,
        quench_inbound: bool,
        covering: bool,
        reason: CompactReason,
    ) -> Result<ShardSnapshot, ServiceError> {
        let pure_drift =
            reason == CompactReason::Drift && self.overlay.is_empty() && self.removed_count == 0;
        // Fallible phase first: the writer state is only committed after
        // the new tree compiled, so a failed rebuild leaves the shard on
        // its previous (consistent) snapshot.
        let mut profiles = ProfileSet::new(schema);
        let mut weights = Vec::with_capacity(self.live_count());
        let live_entries = self
            .base
            .iter()
            .enumerate()
            .filter(|(k, _)| !self.removed[*k])
            .map(|(_, e)| e)
            .chain(self.overlay.iter());
        for e in live_entries.clone() {
            profiles.insert(e.profile.clone());
            weights.push(e.weight);
        }
        let uniform = weights.iter().all(|w| (*w - 1.0).abs() < f64::EPSILON);

        // One bulk containment pass over the whole live population
        // (general-first sweep, not per-profile probes): only the
        // representative antichain is compiled, everything else joins
        // the expansion map.
        let cover = if covering {
            Some(CoverSet::build_bulk(
                schema,
                profiles.iter().map(|p| (p.id().index() as u32, p)),
            )?)
        } else {
            None
        };
        // Statistics geometry and profile weights follow the set that
        // is actually compiled — the representatives under covering.
        // A representative keeps its own weight: its covered
        // subscriptions ride the same compiled states for free, so
        // boosting it further would distort the V2/V3 orderings.
        let rep_set = match &cover {
            Some(cs) => {
                let mut reps = ProfileSet::new(schema);
                for &s in cs.rep_slots() {
                    let p = profiles
                        .get(ProfileId::new(s))
                        .expect("representative slots come from this population");
                    reps.insert(p.clone());
                }
                Some(reps)
            }
            None => None,
        };
        let compiled_set = rep_set.as_ref().unwrap_or(&profiles);
        let weights = if uniform {
            None
        } else {
            Some(match &cover {
                Some(cs) => cs
                    .rep_slots()
                    .iter()
                    .map(|&s| weights[s as usize])
                    .collect(),
                None => weights,
            })
        };

        let mut config = self.tree.clone();
        let empirical = self.tracker.prepare_model(compiled_set, pure_drift)?;
        // A configured event model is the active prior: it wins until
        // real observations exist for the geometry being compiled, then
        // the empirical estimate takes over. Only a pure drift rebuild
        // keeps the observation history — a churn compaction changes
        // the cell geometry and `prepare_model` starts fresh statistics
        // (zero observations), so its near-uniform placeholder must not
        // displace the prior.
        let observed = pure_drift && self.tracker.statistics().events_posted() > 0;
        if observed || config.event_model.is_none() {
            config.event_model = Some(empirical);
        }
        config.profile_weights = weights;
        let filter = match &cover {
            Some(cs) => FilterSnapshot::compile_with_cover(&profiles, cs, &config)?,
            None => FilterSnapshot::compile(&profiles, &config)?,
        };
        self.tracker.finish_rebuild(pure_drift)?;
        let base_dispatch = Arc::new(
            live_entries
                .map(|e| DispatchEntry {
                    id: e.id,
                    sender: e.sender.clone(),
                })
                .collect::<Vec<_>>(),
        );

        // Commit.
        let mut live: Vec<SubEntry> = Vec::with_capacity(base_dispatch.len());
        for (k, e) in std::mem::take(&mut self.base).into_iter().enumerate() {
            if !self.removed[k] {
                live.push(e);
            }
        }
        live.append(&mut self.overlay);
        self.removed = vec![false; live.len()];
        self.removed_count = 0;
        self.base = live;
        self.cover = cover;
        self.overlay_cover.clear();
        self.antichain_dirty = 0;
        let quench = quench_inbound
            .then(|| Arc::new(QuenchAdvice::from_partitions(schema, filter.partitions())));
        Ok(ShardSnapshot {
            filter,
            base_dispatch,
            overlay_dispatch: Arc::new(Vec::new()),
            quench,
        })
    }
}

struct Shard {
    snapshot: RwLock<Arc<ShardSnapshot>>,
    writer: Mutex<ShardWriter>,
}

/// The result of opening a durable broker: the recovered state plus a
/// fresh consumer handle for every live subscription.
///
/// Notification channels do not survive a crash — the recovered
/// subscriptions are re-attached to new channels, returned here in
/// ascending subscription-id order.
pub struct Recovered {
    /// The recovered broker; durability is attached and logging
    /// resumes where the (possibly torn) log left off.
    pub broker: Broker,
    /// One consumer handle per live subscription, ascending by id.
    pub subscribers: Vec<Subscriber>,
}

thread_local! {
    /// Per-thread match buffers: any number of brokers share them, so a
    /// warmed-up publisher thread allocates nothing per publish.
    static SCRATCH: RefCell<(IndexedEvent, SnapshotScratch)> =
        RefCell::new((IndexedEvent::new(), SnapshotScratch::new()));

    /// Per-thread block-match buffers for the batch publish path.
    static BLOCK_SCRATCH: RefCell<SnapshotBlockScratch> =
        RefCell::new(SnapshotBlockScratch::new());
}

/// A sender whose receiver is already gone: placeholder for tombstoned
/// dispatch slots (every send fails immediately; never matched anyway).
fn disconnected_sender() -> Sender<Notification> {
    let (tx, _rx) = channel::channel(0, OverflowPolicy::default());
    tx
}

/// A fresh subscriber channel under `config`'s capacity and overflow
/// policy.
fn notify_channel(
    config: &BrokerConfig,
) -> (Sender<Notification>, crate::channel::Receiver<Notification>) {
    channel::channel(config.notify_capacity, config.overflow)
}

/// Per-event delivery outcome, accumulated across shards.
#[derive(Default)]
struct Delivery {
    matched: Vec<SubscriptionId>,
    dead: Vec<SubscriptionId>,
    /// Notifications lost to a bounded channel's overflow policy
    /// (each one matched — the subscription stays in `matched`).
    overflowed: u64,
    ops: u64,
    /// The overlay side-index's share of `ops` (metrics attribution:
    /// overlay matching decay between compactions).
    overlay_ops: u64,
    rejecting_shards: usize,
}

/// A thread-safe event notification broker (a miniature GENAS, the
/// system the paper's §5 announces on top of this filter algorithm).
///
/// # Example
///
/// ```
/// use ens_service::{Broker, BrokerConfig};
/// use ens_types::{Schema, Domain, Predicate, Event};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::builder()
///     .attribute("temperature", Domain::int(-30, 50))?
///     .build();
/// let broker = Broker::new(&schema, BrokerConfig::default())?;
/// let alerts = broker.subscribe(|b| b.predicate("temperature", Predicate::ge(35)))?;
///
/// broker.publish(&Event::builder(&schema).value("temperature", 40)?.build())?;
/// let n = alerts.try_recv().expect("heat alert");
/// assert_eq!(n.subscription, alerts.id());
/// # Ok(())
/// # }
/// ```
pub struct Broker {
    schema: Arc<Schema>,
    config: BrokerConfig,
    shards: Box<[Shard]>,
    /// Publish history, split out of the filter path so readers of
    /// [`Broker::recent_events`] never contend with matching.
    history: Mutex<VecDeque<Arc<Event>>>,
    sequence: AtomicU64,
    next_sub: AtomicU64,
    metrics: Arc<Metrics>,
    /// WAL + checkpoint state; `None` for in-memory brokers
    /// ([`Broker::new`]), `Some` after [`Broker::open`].
    durability: Option<Durability>,
    /// Fault-injection: `shard + 1` of a batch worker that should
    /// panic on its next run, `0` for none (tests of panic isolation).
    batch_fault: AtomicU64,
}

impl Broker {
    /// Creates a broker over `schema`.
    ///
    /// # Errors
    ///
    /// Propagates filter construction errors.
    pub fn new(schema: &Schema, config: BrokerConfig) -> Result<Self, ServiceError> {
        let n = config.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let profiles = ProfileSet::new(schema);
            let tracker = DriftTracker::new(&profiles, config.rebuild)?;
            // Distribution-dependent strategies need a model before any
            // event arrived: seed the first tree with the (uniform)
            // empirical model, exactly like `AdaptiveFilter::new`.
            let mut tree = config.tree.clone();
            if tree.event_model.is_none() {
                tree.event_model = Some(tracker.statistics().empirical_model()?);
            }
            let filter = FilterSnapshot::compile(&profiles, &tree)?;
            let quench = config
                .quench_inbound
                .then(|| Arc::new(QuenchAdvice::from_partitions(schema, filter.partitions())));
            let snapshot = ShardSnapshot {
                filter,
                base_dispatch: Arc::new(Vec::new()),
                overlay_dispatch: Arc::new(Vec::new()),
                quench,
            };
            shards.push(Shard {
                snapshot: RwLock::new(Arc::new(snapshot)),
                writer: Mutex::new(ShardWriter {
                    base: Vec::new(),
                    overlay: Vec::new(),
                    removed: Vec::new(),
                    removed_count: 0,
                    cover: None,
                    overlay_cover: Vec::new(),
                    antichain_dirty: 0,
                    tracker,
                    tree: config.tree.clone(),
                }),
            });
        }
        Ok(Broker {
            schema: Arc::new(schema.clone()),
            config,
            shards: shards.into_boxed_slice(),
            history: Mutex::new(VecDeque::new()),
            sequence: AtomicU64::new(0),
            next_sub: AtomicU64::new(0),
            metrics: Arc::new(Metrics::default()),
            durability: None,
            batch_fault: AtomicU64::new(0),
        })
    }

    /// Rebuilds the broker from a loaded checkpoint: no recompilation —
    /// the serialized filter arenas are restored as-is.
    fn from_checkpoint(
        schema: &Schema,
        config: BrokerConfig,
        cp: Checkpoint,
        subscribers: &mut BTreeMap<u64, Subscriber>,
    ) -> Result<Self, ServiceError> {
        if persist::schema_fingerprint(schema) != persist::schema_fingerprint(&cp.schema) {
            return Err(ServiceError::Persist(
                "checkpoint schema does not match the broker schema".into(),
            ));
        }
        let n = config.shards.max(1);
        if cp.shards.len() != n {
            return Err(ServiceError::Persist(format!(
                "checkpoint has {} shards, configuration expects {n}",
                cp.shards.len()
            )));
        }
        let mut shards = Vec::with_capacity(n);
        for cs in cp.shards {
            let filter = FilterSnapshot::from_bytes(&cs.filter)?;
            if filter.base_len() != cs.base.len() || filter.overlay_len() != cs.overlay.len() {
                return Err(ServiceError::Persist(format!(
                    "checkpoint entries ({} base, {} overlay) do not line up \
                     with the shard's filter snapshot ({}, {})",
                    cs.base.len(),
                    cs.overlay.len(),
                    filter.base_len(),
                    filter.overlay_len()
                )));
            }
            let mut base = Vec::with_capacity(cs.base.len());
            let mut removed = Vec::with_capacity(cs.base.len());
            let mut removed_count = 0;
            for e in cs.base {
                let id = SubscriptionId::new(e.id);
                let sender = if e.tombstoned {
                    removed_count += 1;
                    disconnected_sender()
                } else {
                    let (tx, rx) = notify_channel(&config);
                    subscribers.insert(e.id, Subscriber::new(id, rx));
                    tx
                };
                removed.push(e.tombstoned);
                base.push(SubEntry {
                    id,
                    profile: e.profile,
                    weight: e.weight,
                    sender,
                });
            }
            if filter.removed_len() != removed_count {
                return Err(ServiceError::Persist(format!(
                    "checkpoint tombstones ({removed_count}) do not line up \
                     with the shard's filter snapshot ({})",
                    filter.removed_len()
                )));
            }
            let mut overlay = Vec::with_capacity(cs.overlay.len());
            for e in cs.overlay {
                if e.tombstoned {
                    return Err(ServiceError::Persist(
                        "checkpoint overlay entries cannot be tombstoned".into(),
                    ));
                }
                let id = SubscriptionId::new(e.id);
                let (tx, rx) = notify_channel(&config);
                subscribers.insert(e.id, Subscriber::new(id, rx));
                overlay.push(SubEntry {
                    id,
                    profile: e.profile,
                    weight: e.weight,
                    sender: tx,
                });
            }
            // The containment index is replayed verbatim from the
            // snapshot's expansion plan — representatives are
            // re-hashed, but no pairwise containment is re-derived.
            let cover = match (config.covering, filter.cover_plan()) {
                (true, Some(plan)) => {
                    let reps = plan
                        .rep_slots()
                        .iter()
                        .map(|&s| (s, &base[s as usize].profile));
                    Some(CoverSet::from_parts(schema, reps, plan.child_triples())?)
                }
                // A checkpoint written with covering off (or vice
                // versa): the next compaction switches the shard over.
                _ => None,
            };
            let overlay_cover = if cover.is_some() {
                filter.overlay_cover_entries()
            } else {
                vec![None; overlay.len()]
            };
            let writer = ShardWriter {
                base,
                overlay,
                removed,
                removed_count,
                cover,
                overlay_cover,
                antichain_dirty: 0,
                // Drift statistics are not persisted: the tracker
                // restarts over the recovered live set, so the first
                // post-recovery rebuild decision waits for fresh
                // observations (conservative, never wrong).
                tracker: DriftTracker::new(&ProfileSet::new(schema), config.rebuild)?,
                tree: cs.tree,
            };
            // Mirror `delta_quench`: quenching is only safe while the
            // overlay is empty (overlay profiles are outside the
            // compiled coverage map).
            let quench = (config.quench_inbound && writer.overlay.is_empty())
                .then(|| Arc::new(QuenchAdvice::from_partitions(schema, filter.partitions())));
            let snapshot = ShardSnapshot {
                filter,
                base_dispatch: writer.base_dispatch(),
                overlay_dispatch: writer.overlay_dispatch(),
                quench,
            };
            shards.push(Shard {
                snapshot: RwLock::new(Arc::new(snapshot)),
                writer: Mutex::new(writer),
            });
        }
        Ok(Broker {
            schema: Arc::new(schema.clone()),
            config,
            shards: shards.into_boxed_slice(),
            history: Mutex::new(VecDeque::new()),
            sequence: AtomicU64::new(cp.sequence),
            next_sub: AtomicU64::new(cp.next_sub),
            metrics: Arc::new(Metrics::default()),
            durability: None,
            batch_fault: AtomicU64::new(0),
        })
    }

    /// Whether `id` is a live (non-tombstoned) subscription.
    fn is_live(&self, id: SubscriptionId) -> bool {
        let w = self.shard_of(id).writer.lock();
        w.overlay.iter().any(|e| e.id == id)
            || w.base
                .iter()
                .enumerate()
                .any(|(k, e)| e.id == id && !w.removed[k])
    }

    /// Replays an accepted retune: switches the shard's active tree
    /// configuration and recompiles, exactly like the original
    /// drift-triggered rebuild did.
    fn apply_retune(
        &self,
        shard_index: usize,
        attribute_order: AttributeOrder,
        search: SearchStrategy,
        event_model: JointDist,
    ) -> Result<(), ServiceError> {
        let Some(shard) = self.shards.get(shard_index) else {
            return Err(ServiceError::Persist(format!(
                "retune record names shard {shard_index}, broker has {}",
                self.shards.len()
            )));
        };
        let mut w = shard.writer.lock();
        w.tree.attribute_order = attribute_order;
        w.tree.search = search;
        w.tree.event_model = Some(event_model);
        let snapshot = w.compact(
            &self.schema,
            self.config.quench_inbound,
            self.config.covering,
            CompactReason::Churn,
        )?;
        *shard.snapshot.write() = Arc::new(snapshot);
        Ok(())
    }

    /// The broker's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        self.schema.as_ref()
    }

    /// The broker's schema as a shared handle (cheap to clone for
    /// producers/consumers on other threads).
    #[must_use]
    pub fn schema_shared(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of subscription shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, id: SubscriptionId) -> usize {
        (id.get() % self.shards.len() as u64) as usize
    }

    fn shard_of(&self, id: SubscriptionId) -> &Shard {
        &self.shards[self.shard_index(id)]
    }

    /// Registers a subscription built by `f` and returns the consumer
    /// handle.
    ///
    /// # Errors
    ///
    /// Propagates profile building and filter errors.
    pub fn subscribe<F>(&self, f: F) -> Result<Subscriber, ServiceError>
    where
        F: FnOnce(ProfileBuilder<'_>) -> Result<ProfileBuilder<'_>, TypesError>,
    {
        let profile = f(Profile::builder(&self.schema))?.build(ProfileId::new(0));
        self.subscribe_profile(profile)
    }

    /// Registers a subscription from the textual profile syntax, e.g.
    /// `profile(temperature >= 35; humidity = 90)`.
    ///
    /// # Errors
    ///
    /// Propagates parse and filter errors.
    pub fn subscribe_parsed(&self, text: &str) -> Result<Subscriber, ServiceError> {
        let profile = ens_types::parse::parse_profile(&self.schema, text, ProfileId::new(0))?;
        self.subscribe_profile(profile)
    }

    /// Registers a pre-built profile as a subscription.
    ///
    /// The profile enters the shard's overlay side-matcher immediately
    /// — cost O(overlay), independent of the total subscription count —
    /// and is folded into the compiled tree at the next compaction.
    ///
    /// # Errors
    ///
    /// Propagates filter errors.
    pub fn subscribe_profile(&self, profile: Profile) -> Result<Subscriber, ServiceError> {
        self.subscribe_profile_weighted(profile, 1.0)
    }

    /// Registers a subscription with a priority weight. Weights scale
    /// the profile's share of the profile distribution `Pp`, so the
    /// V2/V3 value orderings serve high-priority subscriptions first
    /// (paper §4.3: "faster notifications for profiles with high
    /// priority"). Weights take effect when the profile is compiled
    /// into the tree (immediately with `max_overlay: 0`).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Filter`] for non-positive weights and
    /// propagates filter errors.
    pub fn subscribe_profile_weighted(
        &self,
        profile: Profile,
        weight: f64,
    ) -> Result<Subscriber, ServiceError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(ServiceError::Filter(
                ens_filter::FilterError::ModelMismatch {
                    message: format!("subscription weight {weight} must be finite and positive"),
                },
            ));
        }
        let id = SubscriptionId::new(self.next_sub.fetch_add(1, Ordering::Relaxed));
        let logged = self.durability.is_some().then(|| profile.clone());
        let sub = self.commit_subscribe(id, profile, weight)?;
        // Log after the in-memory commit: an operation becomes durable
        // when its record hits the WAL, and it is acknowledged (the
        // subscriber handle returned) only after that. A checkpoint
        // sneaking between commit and append captures the entry early;
        // replay then skips the record's already-live id.
        if let Some(profile) = logged {
            self.wal_log(|lsn| WalRecord::Subscribe {
                lsn,
                id: id.get(),
                weight,
                profile,
            })?;
        }
        self.maybe_checkpoint();
        Ok(sub)
    }

    /// The in-memory half of a subscribe: overlay insert, compact or
    /// delta snapshot, swap. Shared by the public paths (which then
    /// log) and WAL replay (which must not).
    fn commit_subscribe(
        &self,
        id: SubscriptionId,
        profile: Profile,
        weight: f64,
    ) -> Result<Subscriber, ServiceError> {
        let (tx, rx) = notify_channel(&self.config);
        let shard = self.shard_of(id);
        let mut w = shard.writer.lock();
        // Probe the containment index before committing: a covered
        // subscribe rides its representative's compiled states through
        // the expansion map (zero added matching cost); an uncovered
        // one that dominates compiled representatives inverts the
        // antichain and adds compaction pressure instead.
        let (entry_cover, dirty) = match (self.config.covering, &w.cover) {
            (true, Some(cs)) => match cs.probe(&profile)? {
                CoverOutcome::Covered { rep, residual } => {
                    let compiled = cs
                        .compiled_index_of(rep)
                        .expect("probe only returns representative slots");
                    (Some((compiled, residual)), 0)
                }
                CoverOutcome::Rep => (None, cs.dominated_reps(&profile)?.len()),
            },
            _ => (None, 0),
        };
        w.overlay.push(SubEntry {
            id,
            profile,
            weight,
            sender: tx,
        });
        w.overlay_cover.push(entry_cover);
        w.antichain_dirty += dirty;
        let pressure = w.overlay.len() + w.antichain_dirty;
        let result = if w.base.is_empty() || self.config.rebuild.overlay_full(pressure) {
            w.compact(
                &self.schema,
                self.config.quench_inbound,
                self.config.covering,
                CompactReason::Churn,
            )
            .inspect(|_| {
                self.metrics
                    .overlay_compactions
                    .fetch_add(1, Ordering::Relaxed);
            })
        } else {
            let prev = shard.snapshot.read().clone();
            w.delta_snapshot(&prev, &self.schema, self.config.quench_inbound)
        };
        match result {
            Ok(snapshot) => {
                *shard.snapshot.write() = Arc::new(snapshot);
                Ok(Subscriber::new(id, rx))
            }
            Err(e) => {
                w.overlay.pop();
                w.overlay_cover.pop();
                w.antichain_dirty -= dirty;
                Err(e)
            }
        }
    }

    /// Bulk-registers many subscriptions with a single compaction per
    /// shard — the cheap way to load a large initial population. With
    /// [`BrokerConfig::covering`] on, each shard's compaction runs
    /// **one** containment pass over its whole batch (the bulk
    /// general-first sweep), not a per-profile probe, before anything
    /// is compiled.
    ///
    /// # Errors
    ///
    /// Propagates filter errors.
    pub fn subscribe_many<I>(&self, profiles: I) -> Result<Vec<Subscriber>, ServiceError>
    where
        I: IntoIterator<Item = Profile>,
    {
        // Group entries per shard first: one writer lock per touched
        // shard instead of one per profile.
        let mut subscribers = Vec::new();
        let mut pending: Vec<Vec<SubEntry>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut log = Vec::new();
        for profile in profiles {
            let id = SubscriptionId::new(self.next_sub.fetch_add(1, Ordering::Relaxed));
            let (tx, rx) = notify_channel(&self.config);
            if self.durability.is_some() {
                log.push((id.get(), profile.clone()));
            }
            pending[self.shard_index(id)].push(SubEntry {
                id,
                profile,
                weight: 1.0,
                sender: tx,
            });
            subscribers.push(Subscriber::new(id, rx));
        }
        let pushed: Vec<Vec<SubscriptionId>> = pending
            .iter()
            .map(|p| p.iter().map(|e| e.id).collect())
            .collect();
        for (shard, entries) in self.shards.iter().zip(&mut pending) {
            if !entries.is_empty() {
                let mut w = shard.writer.lock();
                // No per-profile probes here: the compaction below runs
                // the bulk containment pass over the whole shard batch.
                w.overlay_cover.extend(entries.iter().map(|_| None));
                w.overlay.append(entries);
            }
        }
        let mut failure = None;
        for (s, shard) in self.shards.iter().enumerate() {
            if pushed[s].is_empty() {
                continue;
            }
            let mut w = shard.writer.lock();
            match w.compact(
                &self.schema,
                self.config.quench_inbound,
                self.config.covering,
                CompactReason::Churn,
            ) {
                Ok(snapshot) => {
                    self.metrics
                        .overlay_compactions
                        .fetch_add(1, Ordering::Relaxed);
                    *shard.snapshot.write() = Arc::new(snapshot);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            // Roll every pushed entry back out so a failed bulk load
            // leaves no phantom subscriptions and no shard poisoned by
            // an invalid profile. Concurrent writers may have published
            // snapshots containing (or even compacted) these entries in
            // the meantime, so the cleanup handles both locations under
            // the writer lock and republishes a consistent snapshot:
            // every entry left behind is known-compilable, so the
            // rebuild cannot fail (defensively skipped if it does).
            for (s, ids) in pushed.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                let shard = &self.shards[s];
                let mut w = shard.writer.lock();
                let keep: Vec<bool> = w.overlay.iter().map(|e| !ids.contains(&e.id)).collect();
                let mut it = keep.iter();
                w.overlay.retain(|_| *it.next().unwrap());
                let mut it = keep.iter();
                w.overlay_cover.retain(|_| *it.next().unwrap());
                for k in 0..w.base.len() {
                    if !w.removed[k] && ids.contains(&w.base[k].id) {
                        w.removed[k] = true;
                        w.removed_count += 1;
                        w.base[k].sender = disconnected_sender();
                    }
                }
                let prev = shard.snapshot.read().clone();
                if let Ok(delta) = w.delta_snapshot(&prev, &self.schema, self.config.quench_inbound)
                {
                    let snapshot = ShardSnapshot {
                        filter: delta.filter.with_removed(w.removed.clone()),
                        base_dispatch: w.base_dispatch(),
                        overlay_dispatch: delta.overlay_dispatch,
                        quench: delta.quench,
                    };
                    *shard.snapshot.write() = Arc::new(snapshot);
                }
            }
            return Err(e);
        }
        // Nothing was logged for a failed bulk load (the rollback
        // above restored the pre-call state); on success every entry
        // becomes durable before the handles are returned.
        for (id, profile) in log {
            self.wal_log(|lsn| WalRecord::Subscribe {
                lsn,
                id,
                weight: 1.0,
                profile,
            })?;
        }
        self.maybe_checkpoint();
        Ok(subscribers)
    }

    /// Cancels a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownSubscription`] if the id is not
    /// live, and propagates rebuild errors.
    pub fn unsubscribe(&self, id: SubscriptionId) -> Result<(), ServiceError> {
        self.remove_subscription(id)?;
        self.maybe_checkpoint();
        Ok(())
    }

    fn remove_subscription(&self, id: SubscriptionId) -> Result<(), ServiceError> {
        let shard = self.shard_of(id);
        let mut w = shard.writer.lock();
        let snapshot = if let Some(k) = w.overlay.iter().position(|e| e.id == id) {
            // Build the new snapshot before committing the removal so a
            // failed rebuild leaves writer state and published snapshot
            // in agreement.
            let entry = w.overlay.remove(k);
            let entry_cover = w.overlay_cover.remove(k);
            let prev = shard.snapshot.read().clone();
            match w.delta_snapshot(&prev, &self.schema, self.config.quench_inbound) {
                Ok(snapshot) => snapshot,
                Err(e) => {
                    w.overlay.insert(k, entry);
                    w.overlay_cover.insert(k, entry_cover);
                    return Err(e);
                }
            }
        } else if let Some(k) = w
            .base
            .iter()
            .enumerate()
            .position(|(k, e)| e.id == id && !w.removed[k])
        {
            w.removed[k] = true;
            w.removed_count += 1;
            if self.config.rebuild.removed_full(w.removed_count) {
                match w.compact(
                    &self.schema,
                    self.config.quench_inbound,
                    self.config.covering,
                    CompactReason::Churn,
                ) {
                    Ok(snapshot) => {
                        self.metrics
                            .overlay_compactions
                            .fetch_add(1, Ordering::Relaxed);
                        snapshot
                    }
                    Err(e) => {
                        w.removed[k] = false;
                        w.removed_count -= 1;
                        return Err(e);
                    }
                }
            } else {
                // Release the cancelled subscription's channel now
                // instead of at the next compaction: matching skips
                // tombstones, so the dispatch slot only needs a
                // placeholder sender. (Infallible past this point.)
                w.base[k].sender = disconnected_sender();
                let prev = shard.snapshot.read().clone();
                w.tombstone_snapshot(&prev, &self.schema, self.config.quench_inbound)
            }
        } else {
            return Err(ServiceError::UnknownSubscription(id));
        };
        *shard.snapshot.write() = Arc::new(snapshot);
        // Under the writer lock, so a concurrent checkpoint serializes
        // cleanly before or after the (commit, log) pair.
        self.wal_log(|lsn| WalRecord::Unsubscribe { lsn, id: id.get() })?;
        Ok(())
    }

    /// Number of live subscriptions.
    #[must_use]
    pub fn subscription_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.writer.lock().live_count())
            .sum()
    }

    /// Publishes one event: filters, delivers notifications, updates the
    /// adaptive statistics and possibly restructures a shard's tree.
    ///
    /// The event is wrapped in one [`Arc`] (a single allocation per
    /// publish) which every notified subscriber and the history ring
    /// buffer share; matching runs lock-free against the current
    /// snapshots with thread-local scratch and allocates nothing after
    /// warm-up.
    ///
    /// # Errors
    ///
    /// Propagates domain errors for ill-typed event values and filter
    /// rebuild errors.
    pub fn publish(&self, event: &Event) -> Result<PublishReceipt, ServiceError> {
        self.publish_shared(Arc::new(event.clone()))
    }

    /// Like [`Broker::publish`], but takes an already-shared event and
    /// avoids even the per-publish clone.
    ///
    /// # Errors
    ///
    /// Propagates domain errors for ill-typed event values and filter
    /// rebuild errors.
    pub fn publish_shared(&self, event: Arc<Event>) -> Result<PublishReceipt, ServiceError> {
        let mut delivery = Delivery::default();
        let sequence = SCRATCH.with(|cell| -> Result<u64, ServiceError> {
            let (indexed, scratch) = &mut *cell.borrow_mut();
            indexed.resolve_into(&self.schema, &event)?;
            let sequence = self.sequence.fetch_add(1, Ordering::Relaxed);
            self.record_history(&event);
            for shard in self.shards.iter() {
                let snap = shard.snapshot.read().clone();
                self.match_and_deliver(&snap, indexed, scratch, &event, sequence, &mut delivery);
            }
            Ok(sequence)
        })?;
        let quenched = delivery.rejecting_shards == self.shards.len();
        self.finish_publish(&event, sequence, &mut delivery)?;
        self.maybe_checkpoint();
        delivery.matched.sort_unstable();
        Ok(PublishReceipt {
            sequence,
            matched: delivery.matched,
            ops: delivery.ops,
            quenched,
        })
    }

    /// Publishes a batch of events, fanning the work out across shards
    /// on `std::thread` workers (one per shard when the broker has more
    /// than one shard).
    ///
    /// The batch is resolved **once** into an [`IndexedBatch`] shared
    /// by every shard worker, and each worker drives it through
    /// [`FilterSnapshot::match_block`] — the DFSA's interleaved
    /// multi-event traversal when [`BrokerConfig::dfsa_dispatch`] is
    /// set — so per-event dispatch overhead is paid once per block, not
    /// once per event.
    ///
    /// Each shard processes the whole batch in order against one
    /// consistent snapshot, so every subscriber receives its
    /// notifications in sequence order. Receipts come back in input
    /// order.
    ///
    /// # Errors
    ///
    /// Rejects the entire batch (before any delivery) if any event is
    /// ill-typed; propagates rebuild errors.
    pub fn publish_batch(
        &self,
        events: &[Arc<Event>],
    ) -> Result<Vec<PublishReceipt>, ServiceError> {
        if events.is_empty() {
            return Ok(Vec::new());
        }
        // Validate and resolve everything up front: a shard worker must
        // never fail mid-batch, and resolving once saves re-indexing
        // the event in every shard.
        let mut indexed = IndexedBatch::new();
        indexed.resolve_into(&self.schema, events.iter().map(Arc::as_ref))?;
        self.publish_batch_prepared(events, &indexed)
    }

    /// Like [`Broker::publish_batch`], but takes the batch's resolved
    /// [`IndexedBatch`] from the caller instead of resolving it here —
    /// the path for rows that arrive *already indexed* (federation
    /// ingress decodes wire rows straight into a batch) or that the
    /// caller resolved once for its own matching and wants to share.
    ///
    /// `indexed.row(i)` must be `events[i]`'s resolved form under this
    /// broker's schema; the shape is checked, the cell values are
    /// trusted (a mismatched cell only misroutes that event's own
    /// notifications, exactly as a foreign row would).
    ///
    /// # Errors
    ///
    /// Rejects the whole batch (before any delivery) on a shape
    /// mismatch between `events` and `indexed`; propagates rebuild
    /// errors.
    pub fn publish_batch_prepared(
        &self,
        events: &[Arc<Event>],
        indexed: &IndexedBatch,
    ) -> Result<Vec<PublishReceipt>, ServiceError> {
        if events.is_empty() {
            return Ok(Vec::new());
        }
        if indexed.len() != events.len() || indexed.width() != self.schema.len().max(1) {
            return Err(ServiceError::Types(
                ens_types::TypesError::UnknownAttribute(format!(
                    "indexed batch shape {}x{} does not match {} events of schema width {}",
                    indexed.len(),
                    indexed.width(),
                    events.len(),
                    self.schema.len()
                )),
            ));
        }
        self.metrics
            .batch_events
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        let base_seq = self
            .sequence
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        if self.config.history_capacity > 0 {
            let mut history = self.history.lock();
            for event in events {
                if history.len() == self.config.history_capacity {
                    history.pop_front();
                }
                history.push_back(Arc::clone(event));
            }
        }

        let snaps: Vec<Arc<ShardSnapshot>> = self
            .shards
            .iter()
            .map(|s| s.snapshot.read().clone())
            .collect();
        // A panicking worker (a poisoned profile, a bug in a matching
        // strategy) must not take the broker down or lose the other
        // shards' deliveries: the panic is caught, counted, and the
        // panicked shard contributes empty deliveries for this batch.
        // `AssertUnwindSafe` is sound here: a worker only reads the
        // immutable snapshot and sends on channels whose shared state
        // is lock-protected and stays consistent (drift statistics are
        // only touched later, in `finish_publish`).
        let run_worker = |shard_idx: usize, snap: &ShardSnapshot| -> Vec<Delivery> {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.batch_worker(shard_idx, snap, indexed, events, base_seq)
            }))
            .unwrap_or_else(|_| {
                self.metrics.shard_panics.fetch_add(1, Ordering::Relaxed);
                (0..events.len()).map(|_| Delivery::default()).collect()
            })
        };
        let mut per_shard: Vec<Vec<Delivery>> = if self.shards.len() == 1 {
            vec![run_worker(0, &snaps[0])]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = snaps
                    .iter()
                    .enumerate()
                    .map(|(s, snap)| {
                        let run_worker = &run_worker;
                        scope.spawn(move || run_worker(s, snap))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panics are caught inside"))
                    .collect()
            })
        };

        let mut receipts = Vec::with_capacity(events.len());
        for (i, event) in events.iter().enumerate() {
            let mut delivery = Delivery::default();
            for shard in &mut per_shard {
                let d = std::mem::take(&mut shard[i]);
                delivery.matched.extend(d.matched);
                delivery.dead.extend(d.dead);
                delivery.overflowed += d.overflowed;
                delivery.ops += d.ops;
                delivery.overlay_ops += d.overlay_ops;
                delivery.rejecting_shards += d.rejecting_shards;
            }
            let quenched = delivery.rejecting_shards == self.shards.len();
            let sequence = base_seq + i as u64;
            self.finish_publish(event, sequence, &mut delivery)?;
            delivery.matched.sort_unstable();
            receipts.push(PublishReceipt {
                sequence,
                matched: delivery.matched,
                ops: delivery.ops,
                quenched,
            });
        }
        self.maybe_checkpoint();
        Ok(receipts)
    }

    /// Arms the next `publish_batch` so the worker of `shard` panics
    /// mid-batch — the fault-injection hook behind the panic-isolation
    /// tests. Not part of the supported API.
    #[doc(hidden)]
    pub fn inject_batch_worker_panic(&self, shard: usize) {
        self.batch_fault.store(shard as u64 + 1, Ordering::Relaxed);
    }

    /// Processes the whole batch for one shard, in order, through the
    /// snapshot's block matching engine.
    fn batch_worker(
        &self,
        shard_idx: usize,
        snap: &ShardSnapshot,
        indexed: &IndexedBatch,
        events: &[Arc<Event>],
        base_seq: u64,
    ) -> Vec<Delivery> {
        let armed = self.batch_fault.load(Ordering::Relaxed);
        if armed == shard_idx as u64 + 1
            && self
                .batch_fault
                .compare_exchange(armed, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            panic!("injected batch worker fault (shard {shard_idx})");
        }
        if snap.quench.is_some() {
            // Inbound quenching pre-filters per event before matching;
            // keep the single-event path so quenched events pay (and
            // count) nothing.
            return SCRATCH.with(|cell| {
                let (row, scratch) = &mut *cell.borrow_mut();
                events
                    .iter()
                    .enumerate()
                    .map(|(i, event)| {
                        let mut delivery = Delivery::default();
                        row.copy_from_raw(indexed.row(i));
                        self.match_and_deliver(
                            snap,
                            row,
                            scratch,
                            event,
                            base_seq + i as u64,
                            &mut delivery,
                        );
                        delivery
                    })
                    .collect()
            });
        }
        BLOCK_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            snap.filter
                .match_block(indexed, scratch, self.config.dfsa_dispatch);
            events
                .iter()
                .enumerate()
                .map(|(i, event)| {
                    let mut delivery = Delivery {
                        ops: scratch.ops_of(i),
                        overlay_ops: scratch.overlay_ops_of(i),
                        ..Delivery::default()
                    };
                    for &gpid in scratch.matched_of(i) {
                        self.deliver_one(snap, gpid, event, base_seq + i as u64, &mut delivery);
                    }
                    delivery
                })
                .collect()
        })
    }

    /// Delivers one matched global profile id to its subscriber.
    #[inline]
    fn deliver_one(
        &self,
        snap: &ShardSnapshot,
        gpid: u32,
        event: &Arc<Event>,
        sequence: u64,
        out: &mut Delivery,
    ) {
        let entry = snap.entry(gpid);
        let n = Notification {
            subscription: entry.id,
            sequence,
            event: Arc::clone(event),
        };
        match entry.sender.send(n) {
            Ok(SendOutcome::Delivered) => out.matched.push(entry.id),
            Ok(SendOutcome::DroppedOne) => {
                // The subscription matched and stays live; exactly one
                // notification was lost to the overflow policy.
                out.matched.push(entry.id);
                out.overflowed += 1;
            }
            Err(_) => out.dead.push(entry.id),
        }
    }

    /// The lock-free per-(event, shard) hot path: quench check, match
    /// against the snapshot, deliver to matched subscribers.
    fn match_and_deliver(
        &self,
        snap: &ShardSnapshot,
        indexed: &IndexedEvent,
        scratch: &mut SnapshotScratch,
        event: &Arc<Event>,
        sequence: u64,
        out: &mut Delivery,
    ) {
        if let Some(q) = &snap.quench {
            if !q.allows_indexed(indexed) {
                out.rejecting_shards += 1;
                return;
            }
        }
        snap.filter
            .match_into(indexed, scratch, self.config.dfsa_dispatch);
        out.ops += scratch.ops();
        out.overlay_ops += scratch.overlay_ops();
        for &gpid in scratch.matched() {
            self.deliver_one(snap, gpid, event, sequence, out);
        }
    }

    fn record_history(&self, event: &Arc<Event>) {
        if self.config.history_capacity > 0 {
            let mut history = self.history.lock();
            if history.len() == self.config.history_capacity {
                history.pop_front();
            }
            history.push_back(Arc::clone(event));
        }
    }

    /// Post-delivery bookkeeping shared by `publish` and
    /// `publish_batch`: metrics, sampled drift statistics (with
    /// adaptive rebuilds) and garbage collection of hung-up
    /// subscribers.
    fn finish_publish(
        &self,
        event: &Arc<Event>,
        sequence: u64,
        delivery: &mut Delivery,
    ) -> Result<(), ServiceError> {
        let quenched = delivery.rejecting_shards == self.shards.len();
        self.metrics
            .events_published
            .fetch_add(1, Ordering::Relaxed);
        if quenched {
            self.metrics.quenched_events.fetch_add(1, Ordering::Relaxed);
        }
        if delivery.ops > 0 {
            self.metrics
                .total_ops
                .fetch_add(delivery.ops, Ordering::Relaxed);
        }
        if delivery.overlay_ops > 0 {
            self.metrics
                .overlay_ops
                .fetch_add(delivery.overlay_ops, Ordering::Relaxed);
        }
        if !delivery.matched.is_empty() {
            self.metrics
                .notifications_sent
                .fetch_add(delivery.matched.len() as u64, Ordering::Relaxed);
        }
        if delivery.overflowed > 0 {
            self.metrics
                .overflow_dropped
                .fetch_add(delivery.overflowed, Ordering::Relaxed);
        }
        if !delivery.dead.is_empty() {
            self.metrics
                .dropped_notifications
                .fetch_add(delivery.dead.len() as u64, Ordering::Relaxed);
            // Garbage-collect subscriptions whose consumers hung up
            // (racing GCs may have removed them already).
            for id in delivery.dead.drain(..) {
                match self.remove_subscription(id) {
                    Ok(()) | Err(ServiceError::UnknownSubscription(_)) => {}
                    // The in-memory removal committed and only the WAL
                    // append failed: the broker is already flagged
                    // degraded, and the publish that noticed the dead
                    // consumer must keep serving the match path.
                    Err(ServiceError::Persist(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        if !quenched && self.config.stats_sample > 0 && sequence % self.config.stats_sample == 0 {
            self.observe_drift(event)?;
        }
        Ok(())
    }

    /// Records `event` into every shard's drift statistics (skipping
    /// shards whose writer lock is contended) and runs adaptive
    /// rebuilds — with [`TuningPolicy`] arbitration when enabled —
    /// where the drift policy fires.
    fn observe_drift(&self, event: &Arc<Event>) -> Result<(), ServiceError> {
        for (s, shard) in self.shards.iter().enumerate() {
            let Some(mut w) = shard.writer.try_lock() else {
                continue;
            };
            if !w.tracker.observe(event)? {
                continue;
            }
            let retuned = if self.config.tuning.is_enabled() {
                if !self.retune_shard(shard, &mut w)? {
                    continue;
                }
                true
            } else {
                false
            };
            let snapshot = w.compact(
                &self.schema,
                self.config.quench_inbound,
                self.config.covering,
                CompactReason::Drift,
            )?;
            self.metrics.tree_rebuilds.fetch_add(1, Ordering::Relaxed);
            *shard.snapshot.write() = Arc::new(snapshot);
            // An accepted retune changed the shard's active tree
            // configuration — that survives restarts, so it is logged.
            // (A plain drift rebuild only refreshes the event model
            // from statistics that are not persisted anyway.)
            if retuned && self.durability.is_some() {
                let attribute_order = w.tree.attribute_order.clone();
                let search = w.tree.search;
                let event_model = w
                    .tree
                    .event_model
                    .clone()
                    .expect("accepted retune sets the event model");
                match self.wal_log(|lsn| WalRecord::Retune {
                    lsn,
                    shard: s as u32,
                    attribute_order,
                    search,
                    event_model,
                }) {
                    Ok(()) => {}
                    // The retuned tree is live in memory either way; a
                    // failed append only means the new shape may not
                    // survive a restart. Publishing continues degraded
                    // rather than failing on a background concern.
                    Err(ServiceError::Persist(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// One tuning pass for a drift-triggered shard: prices the
    /// candidate configurations of [`BrokerConfig::tuning`] under the
    /// shard's online distribution estimate against the cost of keeping
    /// the stale tree. Returns whether a rebuild should proceed — on
    /// acceptance the shard's active [`TreeConfig`] is already switched
    /// to the winning shape (the caller's `compact` stages and commits
    /// the snapshot); on decline the drift detector is re-armed and no
    /// rebuild happens.
    ///
    /// The whole pass runs on the publishing thread under the shard's
    /// writer lock; its cost (dominated by the candidate tree builds,
    /// recorded in `tuning_nanos`) is why declines re-baseline the
    /// detector. Known slack: the winning tree is rebuilt once more by
    /// `compact` (~1/16 of the pass with the standard battery) —
    /// threading the evaluated tree through would shave that off.
    fn retune_shard(&self, shard: &Shard, w: &mut ShardWriter) -> Result<bool, ServiceError> {
        let t0 = std::time::Instant::now();
        let est = w.tracker.statistics().empirical_model()?;
        // Candidates are priced over the population that would actually
        // be compiled: the representative antichain under covering
        // (tombstoned representatives included — they are still in the
        // current tree), the full live set otherwise.
        let profiles = match &w.cover {
            Some(cs) => {
                let mut ps = ProfileSet::new(&self.schema);
                for &s in cs.rep_slots() {
                    ps.insert(w.base[s as usize].profile.clone());
                }
                ps
            }
            None => w.live_profiles(&self.schema),
        };
        // Covered overlay entries cost nothing at match time, so only
        // uncovered ones carry the per-profile overlay floor.
        let overlay_uncovered = w.overlay_cover.iter().filter(|c| c.is_none()).count();
        // The stale baseline is the compiled base tree plus a one-op
        // floor per overlay profile (accounted inside `evaluate`) —
        // still an under-estimate of the side-matcher's true cost, so
        // the decision stays conservative.
        let snap = shard.snapshot.read().clone();
        let decision = self.config.tuning.evaluate(
            snap.filter.tree(),
            overlay_uncovered,
            &profiles,
            &w.tree,
            &est,
        )?;
        self.metrics
            .tuning_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if decision.accepted {
            self.metrics
                .predicted_ops_bits
                .store(decision.best_ops.to_bits(), Ordering::Relaxed);
            self.metrics.retunes.fetch_add(1, Ordering::Relaxed);
            w.tree.attribute_order = decision.attribute_order;
            w.tree.search = decision.search;
            // The estimate the retune was priced under becomes the
            // shard's prior: marginals are domain-level (geometry-
            // independent), so a later churn compaction — whose
            // geometry reset starts statistics from zero — compiles
            // with the last good estimate instead of uniform.
            w.tree.event_model = Some(est);
            Ok(true)
        } else {
            self.metrics
                .retunes_declined
                .fetch_add(1, Ordering::Relaxed);
            w.tracker.decline_rebuild()?;
            Ok(false)
        }
    }

    /// Current quenching advice for producers, covering every live
    /// subscription (compiled and overlay) across all shards.
    #[must_use]
    pub fn quench_advice(&self) -> QuenchAdvice {
        let mut live = ProfileSet::new(&self.schema);
        for shard in self.shards.iter() {
            let w = shard.writer.lock();
            for (k, e) in w.base.iter().enumerate() {
                if !w.removed[k] {
                    live.insert(e.profile.clone());
                }
            }
            for e in &w.overlay {
                live.insert(e.profile.clone());
            }
        }
        QuenchAdvice::from_profiles(&self.schema, &live)
            .expect("live profiles were already compiled once")
    }

    /// Recently published events (newest last), up to the configured
    /// history capacity. Returns shared handles — the events themselves
    /// are not copied.
    #[must_use]
    pub fn recent_events(&self) -> Vec<Arc<Event>> {
        self.history.lock().iter().map(Arc::clone).collect()
    }

    /// Total adaptive (drift-triggered) rebuilds plus churn compactions
    /// across all shards, as `(rebuilds, compactions)`.
    #[must_use]
    pub fn rebuild_counts(&self) -> (u64, u64) {
        (
            self.metrics.tree_rebuilds.load(Ordering::Relaxed),
            self.metrics.overlay_compactions.load(Ordering::Relaxed),
        )
    }

    /// Counter snapshot.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self)
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("schema", &self.schema)
            .field("shards", &self.shards.len())
            .field("subscriptions", &self.subscription_count())
            .finish_non_exhaustive()
    }
}
