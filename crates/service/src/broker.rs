//! The notification broker: subscriptions in, events in, notifications
//! out — with the adaptive distribution-based filter in the middle.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use ens_filter::{AdaptiveFilter, AdaptivePolicy, MatchScratch, TreeConfig};
use ens_types::{
    Event, IndexedEvent, Profile, ProfileBuilder, ProfileId, ProfileSet, Schema, TypesError,
};
use parking_lot::RwLock;

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::notify::{Notification, Subscriber};
use crate::quench::QuenchAdvice;
use crate::subscription::SubscriptionId;
use crate::ServiceError;

/// Broker configuration.
#[derive(Debug, Clone, Default)]
pub struct BrokerConfig {
    /// Filter tree configuration (search strategy, attribute order).
    pub tree: TreeConfig,
    /// Adaptive restructuring policy.
    pub adaptive: AdaptivePolicy,
    /// How many recent events to keep for inspection (0 disables).
    pub history_capacity: usize,
    /// Drop events in the zero-subdomain before filtering (broker-side
    /// quenching; producers can do the same with
    /// [`Broker::quench_advice`]).
    pub quench_inbound: bool,
}

/// Receipt returned by [`Broker::publish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReceipt {
    /// Publish-order sequence number of the event.
    pub sequence: u64,
    /// Subscriptions notified by this event (empty if quenched).
    pub matched: Vec<SubscriptionId>,
    /// Comparison operations spent filtering (0 if quenched).
    pub ops: u64,
    /// Whether the inbound quench pre-filter dropped the event.
    pub quenched: bool,
}

struct SubEntry {
    id: SubscriptionId,
    profile: Profile,
    weight: f64,
    sender: Sender<Notification>,
    active: bool,
}

struct State {
    subs: Vec<SubEntry>,
    filter: AdaptiveFilter,
    /// Dense profile id -> position in `subs` for the current filter.
    index: Vec<usize>,
    /// Bounded publish history (ring buffer, preallocated to capacity).
    history: VecDeque<Arc<Event>>,
    /// Reusable per-publish buffers for the allocation-free match path.
    indexed: IndexedEvent,
    scratch: MatchScratch,
    next_id: u64,
    sequence: u64,
}

/// A thread-safe event notification broker (a miniature GENAS, the
/// system the paper's §5 announces on top of this filter algorithm).
///
/// # Example
///
/// ```
/// use ens_service::{Broker, BrokerConfig};
/// use ens_types::{Schema, Domain, Predicate, Event};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::builder()
///     .attribute("temperature", Domain::int(-30, 50))?
///     .build();
/// let broker = Broker::new(&schema, BrokerConfig::default())?;
/// let alerts = broker.subscribe(|b| b.predicate("temperature", Predicate::ge(35)))?;
///
/// broker.publish(&Event::builder(&schema).value("temperature", 40)?.build())?;
/// let n = alerts.try_recv().expect("heat alert");
/// assert_eq!(n.subscription, alerts.id());
/// # Ok(())
/// # }
/// ```
pub struct Broker {
    schema: Arc<Schema>,
    config: BrokerConfig,
    state: RwLock<State>,
    metrics: Arc<Metrics>,
}

impl Broker {
    /// Creates a broker over `schema`.
    ///
    /// # Errors
    ///
    /// Propagates filter construction errors.
    pub fn new(schema: &Schema, config: BrokerConfig) -> Result<Self, ServiceError> {
        let profiles = ProfileSet::new(schema);
        let filter = AdaptiveFilter::new(&profiles, config.tree.clone(), config.adaptive)?;
        let history = VecDeque::with_capacity(config.history_capacity);
        Ok(Broker {
            schema: Arc::new(schema.clone()),
            config,
            state: RwLock::new(State {
                subs: Vec::new(),
                filter,
                index: Vec::new(),
                history,
                indexed: IndexedEvent::new(),
                scratch: MatchScratch::new(),
                next_id: 0,
                sequence: 0,
            }),
            metrics: Arc::new(Metrics::default()),
        })
    }

    /// The broker's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        self.schema.as_ref()
    }

    /// The broker's schema as a shared handle (cheap to clone for
    /// producers/consumers on other threads).
    #[must_use]
    pub fn schema_shared(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Registers a subscription built by `f` and returns the consumer
    /// handle.
    ///
    /// # Errors
    ///
    /// Propagates profile building and filter rebuild errors.
    pub fn subscribe<F>(&self, f: F) -> Result<Subscriber, ServiceError>
    where
        F: FnOnce(ProfileBuilder<'_>) -> Result<ProfileBuilder<'_>, TypesError>,
    {
        let profile = f(Profile::builder(&self.schema))?.build(ProfileId::new(0));
        self.subscribe_profile(profile)
    }

    /// Registers a subscription from the textual profile syntax, e.g.
    /// `profile(temperature >= 35; humidity = 90)`.
    ///
    /// # Errors
    ///
    /// Propagates parse and filter rebuild errors.
    pub fn subscribe_parsed(&self, text: &str) -> Result<Subscriber, ServiceError> {
        let profile = ens_types::parse::parse_profile(&self.schema, text, ProfileId::new(0))?;
        self.subscribe_profile(profile)
    }

    /// Registers a pre-built profile as a subscription.
    ///
    /// # Errors
    ///
    /// Propagates filter rebuild errors.
    pub fn subscribe_profile(&self, profile: Profile) -> Result<Subscriber, ServiceError> {
        self.subscribe_profile_weighted(profile, 1.0)
    }

    /// Registers a subscription with a priority weight. Weights scale
    /// the profile's share of the profile distribution `Pp`, so the
    /// V2/V3 value orderings serve high-priority subscriptions first
    /// (paper §4.3: "faster notifications for profiles with high
    /// priority").
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Filter`] for non-positive weights and
    /// propagates filter rebuild errors.
    pub fn subscribe_profile_weighted(
        &self,
        profile: Profile,
        weight: f64,
    ) -> Result<Subscriber, ServiceError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(ServiceError::Filter(
                ens_filter::FilterError::ModelMismatch {
                    message: format!("subscription weight {weight} must be finite and positive"),
                },
            ));
        }
        let (tx, rx) = unbounded();
        let mut state = self.state.write();
        let id = SubscriptionId::new(state.next_id);
        state.next_id += 1;
        state.subs.push(SubEntry {
            id,
            profile,
            weight,
            sender: tx,
            active: true,
        });
        Self::rebuild_locked(&self.schema, &mut state)?;
        Ok(Subscriber::new(id, rx))
    }

    /// Cancels a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownSubscription`] if the id is not
    /// live, and propagates rebuild errors.
    pub fn unsubscribe(&self, id: SubscriptionId) -> Result<(), ServiceError> {
        let mut state = self.state.write();
        let before = state.subs.len();
        state.subs.retain(|s| s.id != id);
        if state.subs.len() == before {
            return Err(ServiceError::UnknownSubscription(id));
        }
        Self::rebuild_locked(&self.schema, &mut state)
    }

    fn rebuild_locked(schema: &Schema, state: &mut State) -> Result<(), ServiceError> {
        let mut profiles = ProfileSet::new(schema);
        let mut index = Vec::with_capacity(state.subs.len());
        let mut weights = Vec::with_capacity(state.subs.len());
        for (pos, entry) in state.subs.iter().enumerate() {
            if entry.active {
                profiles.insert(entry.profile.clone());
                index.push(pos);
                weights.push(entry.weight);
            }
        }
        let weights = if weights.iter().all(|w| (*w - 1.0).abs() < f64::EPSILON) {
            None
        } else {
            Some(weights)
        };
        state.filter.set_profiles_weighted(&profiles, weights)?;
        state.index = index;
        Ok(())
    }

    /// Number of live subscriptions.
    #[must_use]
    pub fn subscription_count(&self) -> usize {
        self.state.read().subs.iter().filter(|s| s.active).count()
    }

    /// Publishes one event: filters, delivers notifications, updates the
    /// adaptive statistics and possibly restructures the tree.
    ///
    /// The event is wrapped in one [`Arc`] (a single allocation per
    /// publish) which every notified subscriber and the history ring
    /// buffer share; matching itself runs through the broker's reusable
    /// scratch buffers and allocates nothing after warm-up.
    ///
    /// # Errors
    ///
    /// Propagates domain errors for ill-typed event values and filter
    /// rebuild errors.
    pub fn publish(&self, event: &Event) -> Result<PublishReceipt, ServiceError> {
        self.publish_shared(Arc::new(event.clone()))
    }

    /// Like [`Broker::publish`], but takes an already-shared event and
    /// avoids even the per-publish clone.
    ///
    /// # Errors
    ///
    /// Propagates domain errors for ill-typed event values and filter
    /// rebuild errors.
    pub fn publish_shared(&self, event: Arc<Event>) -> Result<PublishReceipt, ServiceError> {
        let mut guard = self.state.write();
        let state = &mut *guard;
        let sequence = state.sequence;
        state.sequence += 1;

        if self.config.history_capacity > 0 {
            if state.history.len() == self.config.history_capacity {
                state.history.pop_front();
            }
            state.history.push_back(Arc::clone(&event));
        }

        if self.config.quench_inbound {
            let advice =
                QuenchAdvice::from_partitions(&self.schema, state.filter.tree().partitions());
            if !advice.allows(&event)? {
                self.metrics.quenched_events.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .events_published
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(PublishReceipt {
                    sequence,
                    matched: Vec::new(),
                    ops: 0,
                    quenched: true,
                });
            }
        }

        state
            .filter
            .process_into(&event, &mut state.indexed, &mut state.scratch)?;
        let ops = state.scratch.ops();
        self.metrics
            .events_published
            .fetch_add(1, Ordering::Relaxed);
        self.metrics.total_ops.fetch_add(ops, Ordering::Relaxed);

        let mut matched = Vec::with_capacity(state.scratch.profiles().len());
        let mut dead: Vec<SubscriptionId> = Vec::new();
        for pid in state.scratch.profiles() {
            let pos = state.index[pid.index()];
            let entry = &state.subs[pos];
            let n = Notification {
                subscription: entry.id,
                sequence,
                event: Arc::clone(&event),
            };
            if entry.sender.send(n).is_ok() {
                matched.push(entry.id);
                self.metrics
                    .notifications_sent
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                self.metrics
                    .dropped_notifications
                    .fetch_add(1, Ordering::Relaxed);
                dead.push(entry.id);
            }
        }
        if !dead.is_empty() {
            // Garbage-collect subscriptions whose consumers hung up.
            state.subs.retain(|s| !dead.contains(&s.id));
            Self::rebuild_locked(&self.schema, state)?;
        }
        Ok(PublishReceipt {
            sequence,
            matched,
            ops,
            quenched: false,
        })
    }

    /// Current quenching advice for producers.
    #[must_use]
    pub fn quench_advice(&self) -> QuenchAdvice {
        let state = self.state.read();
        QuenchAdvice::from_partitions(&self.schema, state.filter.tree().partitions())
    }

    /// Recently published events (newest last), up to the configured
    /// history capacity. Returns shared handles — the events themselves
    /// are not copied.
    #[must_use]
    pub fn recent_events(&self) -> Vec<Arc<Event>> {
        self.state.read().history.iter().map(Arc::clone).collect()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let state = self.state.read();
        self.metrics.snapshot(
            state.filter.rebuild_count(),
            state.subs.iter().filter(|s| s.active).count(),
        )
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("schema", &self.schema)
            .field("subscriptions", &self.subscription_count())
            .finish_non_exhaustive()
    }
}
