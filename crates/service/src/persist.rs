//! Durability: write-ahead subscription log and checkpoint files.
//!
//! The broker's durable state lives inside a single directory:
//!
//! * **`checkpoint.<gen>.ens`** — generational full images of every
//!   shard: the active [`TreeConfig`] (including accepted retunes),
//!   the compiled [`FilterSnapshot`](ens_filter::FilterSnapshot)
//!   arenas, and the subscription entries (id, weight, profile,
//!   tombstone flag) aligned with the snapshot's dispatch ids. Each is
//!   sealed with a CRC-32 and written atomically (temp file + rename +
//!   parent-directory fsync). The newest
//!   [`DurabilityConfig::checkpoint_generations`] generations are
//!   retained; recovery loads the newest CRC-valid one and falls back
//!   a generation when bit rot took the newest out. (The pre-
//!   generational name `checkpoint.bin` is read as generation 0.)
//! * **`wal.log`** — append-only [`WalRecord`] frames for everything
//!   that changed *since* the oldest retained checkpoint: subscribes,
//!   unsubscribes and accepted retunes. Each frame is
//!   `[u32 len][u32 crc][payload]`. [`decode_wal`] stops at the first
//!   frame whose length or checksum does not hold (a torn final record
//!   is indistinguishable from a clean end of log); [`salvage_wal`]
//!   additionally rescans past a corrupt *interior* frame to the next
//!   checksummed frame boundary, counting salvaged frames and
//!   quarantined bytes instead of discarding the rest of the log.
//!
//! Records carry a monotonically increasing log sequence number
//! (LSN, starting at 1). A checkpoint stores the highest LSN it
//! covers; replay applies only records with a higher LSN, so recovery
//! from a checkpoint plus an *un-truncated* WAL (the
//! checkpoint-then-crash-before-truncate window) is idempotent, and a
//! fallback to an older generation simply replays a longer WAL
//! suffix.

use std::path::PathBuf;
use std::sync::Arc;

use ens_dist::JointDist;
use ens_filter::persist::{crc32, frame_at, ByteReader, ByteWriter, PersistError};
use ens_filter::{AttributeOrder, SearchStrategy, TreeConfig};
use ens_types::{Predicate, Profile, ProfileId, Schema, Value};
use serde::{Deserialize, Serialize};

use crate::error::ServiceError;
use crate::vfs::{OsFs, Vfs};

/// File name of the write-ahead log inside the durability directory.
pub const WAL_FILE: &str = "wal.log";
/// Temp name the WAL is staged under while it is rewritten (trimmed
/// after a checkpoint retires old generations).
pub const WAL_TMP_FILE: &str = "wal.tmp";
/// Legacy (pre-generational) checkpoint file name, read as
/// generation 0.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// Temp name a checkpoint is staged under before the atomic rename.
pub const CHECKPOINT_TMP_FILE: &str = "checkpoint.tmp";

/// The file name of checkpoint generation `gen`
/// (`checkpoint.<gen>.ens`; generation 0 is the legacy
/// [`CHECKPOINT_FILE`]).
#[must_use]
pub fn checkpoint_gen_file(gen: u64) -> String {
    if gen == 0 {
        CHECKPOINT_FILE.to_string()
    } else {
        format!("checkpoint.{gen}.ens")
    }
}

/// Parses a checkpoint generation number back out of a file name
/// produced by [`checkpoint_gen_file`]; `None` for any other name.
#[must_use]
pub fn parse_checkpoint_gen(name: &str) -> Option<u64> {
    if name == CHECKPOINT_FILE {
        return Some(0);
    }
    let gen: u64 = name
        .strip_prefix("checkpoint.")?
        .strip_suffix(".ens")?
        .parse()
        .ok()?;
    (gen > 0).then_some(gen)
}

/// Leading magic of a checkpoint file (`"ENSC"`).
const CHECKPOINT_MAGIC: u32 = 0x454E_5343;
/// Bumped whenever the checkpoint layout changes incompatibly.
const CHECKPOINT_VERSION: u32 = 2;

/// When WAL appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: no acknowledged
    /// subscription change is ever lost, at per-record latency cost.
    Always,
    /// `fsync` only when a checkpoint is written; a crash may lose the
    /// OS-buffered WAL tail (the default, matching the recovery
    /// oracle's torn-tail tolerance).
    #[default]
    OnCheckpoint,
    /// Never `fsync` explicitly (tests and benchmarks).
    Never,
}

/// Configuration of the broker's durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and the checkpoint generations
    /// (created if missing).
    pub dir: PathBuf,
    /// Automatic checkpoint interval, counted in WAL records appended
    /// since the last checkpoint; `0` disables automatic checkpoints
    /// (call [`Broker::checkpoint`](crate::Broker::checkpoint)
    /// manually).
    pub checkpoint_every: u64,
    /// WAL flush policy.
    pub fsync: FsyncPolicy,
    /// Storage backend every WAL/checkpoint byte goes through
    /// ([`OsFs`] in production, [`crate::vfs::FaultFs`] under fault
    /// injection).
    pub vfs: Arc<dyn Vfs>,
    /// Checkpoint generations to retain (minimum 1). With `N > 1`,
    /// recovery survives bit rot in the newest checkpoint by falling
    /// back to an older generation; the WAL is only trimmed past what
    /// the *oldest retained* generation covers, so the fallback can
    /// replay forward to the present.
    pub checkpoint_generations: usize,
    /// WAL salvage mode: recovery scans past a CRC-corrupt interior
    /// frame to the next valid frame boundary (counting salvaged
    /// frames and quarantined bytes) instead of discarding everything
    /// after the first bad byte. Off, a corrupt frame ends the replay
    /// there, exactly like a torn tail.
    pub salvage: bool,
}

impl DurabilityConfig {
    /// A configuration with the default knobs in `dir`: checkpoint
    /// every 4096 records, fsync on checkpoint, the real filesystem,
    /// two retained checkpoint generations, salvage on.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 4096,
            fsync: FsyncPolicy::default(),
            vfs: Arc::new(OsFs),
            checkpoint_generations: 2,
            salvage: true,
        }
    }
}

/// One durable subscription-state change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A subscription was registered.
    Subscribe {
        /// Log sequence number.
        lsn: u64,
        /// The assigned subscription id.
        id: u64,
        /// Priority weight.
        weight: f64,
        /// The subscribed profile.
        profile: Profile,
    },
    /// A subscription was cancelled (explicitly or by dead-subscriber
    /// garbage collection).
    Unsubscribe {
        /// Log sequence number.
        lsn: u64,
        /// The cancelled subscription id.
        id: u64,
    },
    /// A shard accepted a retune: its active tree configuration
    /// switched to the winning shape under the recorded distribution
    /// estimate.
    Retune {
        /// Log sequence number.
        lsn: u64,
        /// Index of the retuned shard.
        shard: u32,
        /// The accepted attribute order.
        attribute_order: AttributeOrder,
        /// The accepted search strategy.
        search: SearchStrategy,
        /// The online estimate the retune was priced under (becomes
        /// the shard's event-model prior).
        event_model: JointDist,
    },
}

impl WalRecord {
    /// The record's log sequence number.
    #[must_use]
    pub fn lsn(&self) -> u64 {
        match self {
            WalRecord::Subscribe { lsn, .. }
            | WalRecord::Unsubscribe { lsn, .. }
            | WalRecord::Retune { lsn, .. } => *lsn,
        }
    }
}

/// Encodes one record as a WAL frame: `[u32 len][u32 crc][payload]`.
///
/// # Errors
///
/// Returns a [`PersistErrorKind::Unencodable`] error if the payload
/// exceeds the `u32` length prefix — the caller degrades instead of
/// panicking on the durability path.
///
/// [`PersistErrorKind::Unencodable`]: ens_filter::PersistErrorKind::Unencodable
pub fn encode_frame(record: &WalRecord) -> Result<Vec<u8>, PersistError> {
    let mut payload = ByteWriter::new();
    payload.serde(record);
    let payload = payload.into_bytes();
    let len = u32::try_from(payload.len()).map_err(|_| {
        PersistError::unencodable(format!(
            "WAL frame payload of {} bytes exceeds the u32 length prefix",
            payload.len()
        ))
    })?;
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// The result of scanning a WAL byte stream.
#[derive(Debug)]
pub struct WalScan {
    /// Every fully-durable record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset just past each decoded frame: truncating the log at
    /// `offsets[i]` durably keeps exactly `records[..=i]`.
    pub offsets: Vec<usize>,
    /// Bytes up to the end of the last accepted frame (quarantined
    /// gaps included under salvage).
    pub consumed: usize,
    /// Whether trailing bytes past `consumed` were discarded as a torn
    /// or corrupt tail.
    pub torn: bool,
    /// Frames recovered *after* a corrupt region ([`salvage_wal`]
    /// only; [`decode_wal`] never resynchronizes, so always 0 there).
    pub salvaged: u64,
    /// Bytes of corrupt interior regions that were skipped to reach a
    /// later valid frame ([`salvage_wal`] only). A torn tail counts
    /// via `consumed < len`, not here.
    pub quarantined: u64,
}

/// Decodes the checksummed frame at `pos`, if its payload is exactly
/// one well-formed record.
fn record_at(bytes: &[u8], pos: usize) -> Option<(WalRecord, usize)> {
    let (payload, next) = frame_at(bytes, pos)?;
    let mut r = ByteReader::new(payload);
    let record = r.serde::<WalRecord>().ok()?;
    r.is_empty().then_some((record, next))
}

/// Scans a WAL byte stream, stopping cleanly at the first frame that
/// is incomplete, fails its checksum, or does not decode — everything
/// before it is durable, everything from it on is a torn tail.
#[must_use]
pub fn decode_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = 0usize;
    while let Some((record, next)) = record_at(bytes, pos) {
        records.push(record);
        pos = next;
        offsets.push(pos);
    }
    WalScan {
        records,
        offsets,
        consumed: pos,
        torn: pos < bytes.len(),
        salvaged: 0,
        quarantined: 0,
    }
}

/// Scans a WAL byte stream in salvage mode: where [`decode_wal`]
/// stops, this scanner probes forward byte by byte for the next
/// checksummed frame boundary, quarantines the skipped region, and
/// keeps going.
///
/// Two guards keep salvage from resurrecting state the log never
/// promised:
///
/// * **Checksum** — only a frame whose CRC-32 holds is ever accepted,
///   so a flipped bit can hide a frame but cannot fabricate one.
/// * **Monotone LSNs** — an accepted frame's LSN must be strictly
///   greater than its predecessor's, so a stale sector that still
///   holds a bit-exact *older* frame (dropped/reordered unsynced
///   writes) is quarantined instead of replayed out of order.
///
/// An un-resynchronizable tail is reported as torn, exactly like
/// [`decode_wal`].
#[must_use]
pub fn salvage_wal(bytes: &[u8]) -> WalScan {
    let mut records: Vec<WalRecord> = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = 0usize;
    let mut salvaged = 0u64;
    let mut quarantined = 0u64;
    let mut skip_from: Option<usize> = None;
    while pos + 8 <= bytes.len() {
        let accept = record_at(bytes, pos)
            .filter(|(record, _)| records.last().is_none_or(|prev| record.lsn() > prev.lsn()));
        match accept {
            Some((record, next)) => {
                if let Some(from) = skip_from.take() {
                    quarantined += (pos - from) as u64;
                    salvaged += 1;
                } else if salvaged > 0 {
                    // Past the first resync, every later frame was
                    // recovered by salvage too.
                    salvaged += 1;
                }
                records.push(record);
                pos = next;
                offsets.push(pos);
            }
            None => {
                if skip_from.is_none() {
                    skip_from = Some(pos);
                }
                pos += 1;
            }
        }
    }
    let consumed = offsets.last().copied().unwrap_or(0);
    WalScan {
        records,
        offsets,
        consumed,
        torn: consumed < bytes.len(),
        salvaged,
        quarantined,
    }
}

/// One subscription entry inside a checkpoint, aligned with the
/// shard's dispatch ids.
#[derive(Debug, Clone)]
pub struct CheckpointEntry {
    /// The subscription id.
    pub id: u64,
    /// Priority weight.
    pub weight: f64,
    /// Whether the entry is tombstoned (cancelled but not yet
    /// compacted out; kept so dispatch indices stay aligned).
    pub tombstoned: bool,
    /// The subscribed profile.
    pub profile: Profile,
}

/// One shard's durable image.
#[derive(Debug, Clone)]
pub struct CheckpointShard {
    /// The shard's active tree configuration (accepted retunes
    /// included).
    pub tree: TreeConfig,
    /// The serialized [`FilterSnapshot`](ens_filter::FilterSnapshot).
    pub filter: Vec<u8>,
    /// Compiled-base entries, aligned with base profile ids.
    pub base: Vec<CheckpointEntry>,
    /// Overlay entries, aligned with overlay profile ids.
    pub overlay: Vec<CheckpointEntry>,
}

/// A complete broker checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The broker schema the state was built against.
    pub schema: Schema,
    /// Highest LSN covered: replay skips records at or below it.
    pub last_lsn: u64,
    /// The next subscription id to hand out.
    pub next_sub: u64,
    /// The next publish sequence number.
    pub sequence: u64,
    /// Per-shard images, in shard order.
    pub shards: Vec<CheckpointShard>,
}

/// Appends one attribute value in the compact tagged form. Entry
/// profiles dominate the non-filter checkpoint payload at scale, so
/// they bypass the generic string-keyed serde codec. (Also the wire
/// form of forwarded subscriptions — see [`crate::federation::wire`].)
pub(crate) fn encode_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Bool(false) => w.u8(0),
        Value::Bool(true) => w.u8(1),
        Value::Int(x) => {
            w.u8(2);
            w.vu64(((x << 1) ^ (x >> 63)) as u64);
        }
        Value::Float(x) => {
            w.u8(3);
            w.f64(x.get());
        }
        Value::Str(s) => {
            w.u8(4);
            w.str(s);
        }
    }
}

pub(crate) fn decode_value(r: &mut ByteReader<'_>) -> Result<Value, PersistError> {
    match r.u8()? {
        0 => Ok(Value::Bool(false)),
        1 => Ok(Value::Bool(true)),
        2 => {
            let z = r.vu64()?;
            Ok(Value::Int(((z >> 1) as i64) ^ -((z & 1) as i64)))
        }
        3 => Value::float(r.f64()?).map_err(|e| PersistError::new(e.to_string())),
        4 => Ok(Value::Str(r.str()?)),
        tag => Err(PersistError::new(format!("unknown value tag {tag}"))),
    }
}

fn encode_value_seq(w: &mut ByteWriter, vs: &[Value]) {
    w.seq_len(vs.len());
    for v in vs {
        encode_value(w, v);
    }
}

fn decode_value_seq(r: &mut ByteReader<'_>) -> Result<Vec<Value>, PersistError> {
    let n = r.seq_len(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_value(r)?);
    }
    Ok(out)
}

// Test seam: forces [`encode_profile`] down its unencodable-predicate
// arm, which is otherwise unreachable from safe code (`Predicate` is
// `#[non_exhaustive]`, but every *current* variant has a tag). Lets
// the degradation path — serialization returns a typed error instead
// of panicking the broker — be exercised end to end.
#[cfg(test)]
thread_local! {
    pub(crate) static FORCE_UNENCODABLE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Appends a profile as `(id, specified count, [attr, predicate]...)`;
/// don't-care attributes are omitted entirely.
///
/// # Errors
///
/// Returns a [`PersistErrorKind::Unencodable`] error for a predicate
/// variant with no assigned tag (a variant added upstream before this
/// codec learned it) — the caller degrades instead of crashing.
///
/// [`PersistErrorKind::Unencodable`]: ens_filter::PersistErrorKind::Unencodable
pub(crate) fn encode_profile(w: &mut ByteWriter, p: &Profile) -> Result<(), PersistError> {
    #[cfg(test)]
    if FORCE_UNENCODABLE.with(std::cell::Cell::get) {
        return Err(PersistError::unencodable(
            "predicate has no checkpoint encoding (forced by test seam)",
        ));
    }
    w.vu32(p.id().index() as u32);
    w.vu32(p.specified_len() as u32);
    for (attr, pred) in p.predicates().iter().enumerate() {
        let (tag, values): (u8, &[Value]) = match pred {
            Predicate::DontCare => continue,
            Predicate::Eq(v) => (1, std::slice::from_ref(v)),
            Predicate::Ne(v) => (2, std::slice::from_ref(v)),
            Predicate::Lt(v) => (3, std::slice::from_ref(v)),
            Predicate::Le(v) => (4, std::slice::from_ref(v)),
            Predicate::Gt(v) => (5, std::slice::from_ref(v)),
            Predicate::Ge(v) => (6, std::slice::from_ref(v)),
            Predicate::Between(lo, hi) => {
                w.vu32(attr as u32);
                w.u8(7);
                encode_value(w, lo);
                encode_value(w, hi);
                continue;
            }
            Predicate::In(vs) => (8, vs.as_slice()),
            Predicate::NotIn(vs) => (9, vs.as_slice()),
            // `Predicate` is non-exhaustive; a variant added upstream
            // must get a tag here before it can be persisted. Until
            // then the state is unencodable — an error, not a panic.
            other => {
                return Err(PersistError::unencodable(format!(
                    "predicate {other:?} has no checkpoint encoding"
                )));
            }
        };
        w.vu32(attr as u32);
        w.u8(tag);
        match tag {
            8 | 9 => encode_value_seq(w, values),
            _ => encode_value(w, &values[0]),
        }
    }
    Ok(())
}

pub(crate) fn decode_profile(
    r: &mut ByteReader<'_>,
    schema: &Schema,
) -> Result<Profile, PersistError> {
    let id = ProfileId::new(r.vu32()?);
    let specified = r.vu32()? as usize;
    let mut predicates = vec![Predicate::DontCare; schema.len()];
    if specified > predicates.len() {
        return Err(PersistError::new(format!(
            "profile specifies {specified} attributes, schema has {}",
            predicates.len()
        )));
    }
    for _ in 0..specified {
        let attr = r.vu32()? as usize;
        if attr >= predicates.len() {
            return Err(PersistError::new(format!(
                "predicate attribute {attr} out of schema range"
            )));
        }
        let pred = match r.u8()? {
            1 => Predicate::Eq(decode_value(r)?),
            2 => Predicate::Ne(decode_value(r)?),
            3 => Predicate::Lt(decode_value(r)?),
            4 => Predicate::Le(decode_value(r)?),
            5 => Predicate::Gt(decode_value(r)?),
            6 => Predicate::Ge(decode_value(r)?),
            7 => Predicate::Between(decode_value(r)?, decode_value(r)?),
            8 => Predicate::In(decode_value_seq(r)?),
            9 => Predicate::NotIn(decode_value_seq(r)?),
            tag => {
                return Err(PersistError::new(format!("unknown predicate tag {tag}")));
            }
        };
        predicates[attr] = pred;
    }
    Profile::from_predicates(schema, id, predicates).map_err(|e| PersistError::new(e.to_string()))
}

fn encode_entries(w: &mut ByteWriter, entries: &[CheckpointEntry]) -> Result<(), PersistError> {
    w.seq_len(entries.len());
    for e in entries {
        w.vu64(e.id);
        w.f64(e.weight);
        w.bool(e.tombstoned);
        encode_profile(w, &e.profile)?;
    }
    Ok(())
}

fn decode_entries(
    r: &mut ByteReader<'_>,
    schema: &Schema,
) -> Result<Vec<CheckpointEntry>, PersistError> {
    let n = r.seq_len(12)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(CheckpointEntry {
            id: r.vu64()?,
            weight: r.f64()?,
            tombstoned: r.bool()?,
            profile: decode_profile(r, schema)?,
        });
    }
    Ok(out)
}

impl Checkpoint {
    /// Serializes the checkpoint, sealed with a CRC-32.
    ///
    /// # Errors
    ///
    /// Returns a
    /// [`PersistErrorKind::Unencodable`](ens_filter::PersistErrorKind::Unencodable)
    /// error when a subscription profile has no byte encoding (a
    /// predicate variant added upstream before this codec learned
    /// its tag). The broker degrades — the checkpoint is skipped, the
    /// previous one stays intact — instead of crashing.
    pub fn to_bytes(&self) -> Result<Vec<u8>, PersistError> {
        let mut w = ByteWriter::new();
        w.u32(CHECKPOINT_MAGIC);
        w.u32(CHECKPOINT_VERSION);
        w.serde(&self.schema);
        w.u64(self.last_lsn);
        w.u64(self.next_sub);
        w.u64(self.sequence);
        w.seq_len(self.shards.len());
        for shard in &self.shards {
            w.serde(&shard.tree);
            w.bytes(&shard.filter);
            encode_entries(&mut w, &shard.base)?;
            encode_entries(&mut w, &shard.overlay)?;
        }
        Ok(w.into_bytes_crc())
    }

    /// Restores a checkpoint written by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on checksum mismatch, wrong magic/version or truncation —
    /// a torn checkpoint file is reported, never half-loaded.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ServiceError> {
        Self::decode(bytes).map_err(|e| ServiceError::Persist(e.message().to_string()))
    }

    fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::verify_crc(bytes)?;
        let magic = r.u32()?;
        if magic != CHECKPOINT_MAGIC {
            return Err(PersistError::new(format!(
                "bad checkpoint magic {magic:#010x}"
            )));
        }
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(PersistError::new(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let schema: Schema = r.serde()?;
        let last_lsn = r.u64()?;
        let next_sub = r.u64()?;
        let sequence = r.u64()?;
        let n = r.seq_len(8)?;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let tree: TreeConfig = r.serde()?;
            let filter = r.bytes()?.to_vec();
            let base = decode_entries(&mut r, &schema)?;
            let overlay = decode_entries(&mut r, &schema)?;
            shards.push(CheckpointShard {
                tree,
                filter,
                base,
                overlay,
            });
        }
        r.expect_end()?;
        Ok(Checkpoint {
            schema,
            last_lsn,
            next_sub,
            sequence,
            shards,
        })
    }
}

/// The canonical byte form of a schema, used to verify that a
/// checkpoint belongs to the broker trying to load it.
#[must_use]
pub(crate) fn schema_fingerprint(schema: &Schema) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.serde(schema);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ens_types::{Domain, Predicate, ProfileId};

    fn schema() -> Schema {
        Schema::builder()
            .attribute("x", Domain::int(0, 99))
            .unwrap()
            .build()
    }

    fn profile(s: &Schema, lo: i64) -> Profile {
        Profile::builder(s)
            .predicate("x", Predicate::ge(lo))
            .unwrap()
            .build(ProfileId::new(0))
    }

    #[test]
    fn wal_frames_round_trip_and_stop_at_torn_tail() {
        let s = schema();
        let records = vec![
            WalRecord::Subscribe {
                lsn: 1,
                id: 0,
                weight: 1.0,
                profile: profile(&s, 10),
            },
            WalRecord::Unsubscribe { lsn: 2, id: 0 },
            WalRecord::Subscribe {
                lsn: 3,
                id: 1,
                weight: 2.5,
                profile: profile(&s, 50),
            },
        ];
        let mut bytes = Vec::new();
        for rec in &records {
            bytes.extend_from_slice(&encode_frame(rec).unwrap());
        }
        let scan = decode_wal(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.consumed, bytes.len());
        assert!(!scan.torn);
        assert_eq!(scan.offsets.len(), 3);

        // Every mid-frame cut keeps exactly the fully-framed prefix.
        for cut in 0..bytes.len() {
            let scan = decode_wal(&bytes[..cut]);
            let durable = scan.offsets.iter().filter(|o| **o <= cut).count();
            assert_eq!(scan.records.len(), durable, "cut at {cut}");
            assert_eq!(scan.records[..], records[..durable], "cut at {cut}");
            assert!(scan.torn || scan.consumed == cut);
        }

        // A flipped payload byte invalidates that frame and the rest.
        let mut corrupt = bytes.clone();
        corrupt[scan.offsets[0] + 9] ^= 0x01;
        let scan = decode_wal(&corrupt);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn);
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_corruption() {
        let s = schema();
        let cp = Checkpoint {
            schema: s.clone(),
            last_lsn: 17,
            next_sub: 5,
            sequence: 99,
            shards: vec![CheckpointShard {
                tree: TreeConfig::default(),
                filter: vec![1, 2, 3],
                base: vec![
                    CheckpointEntry {
                        id: 0,
                        weight: 1.0,
                        tombstoned: false,
                        profile: profile(&s, 10),
                    },
                    CheckpointEntry {
                        id: 2,
                        weight: 3.5,
                        tombstoned: true,
                        profile: profile(&s, 20),
                    },
                ],
                overlay: vec![CheckpointEntry {
                    id: 4,
                    weight: 1.0,
                    tombstoned: false,
                    profile: profile(&s, 30),
                }],
            }],
        };
        let bytes = cp.to_bytes().unwrap();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.last_lsn, 17);
        assert_eq!(back.next_sub, 5);
        assert_eq!(back.sequence, 99);
        assert_eq!(back.shards.len(), 1);
        assert_eq!(back.shards[0].filter, vec![1, 2, 3]);
        assert_eq!(back.shards[0].base.len(), 2);
        assert!(back.shards[0].base[1].tombstoned);
        assert_eq!(back.shards[0].base[1].weight, 3.5);
        assert_eq!(back.shards[0].overlay[0].profile, profile(&s, 30));
        assert_eq!(
            schema_fingerprint(&back.schema),
            schema_fingerprint(&s),
            "schema survives"
        );

        for at in [0, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x10;
            assert!(Checkpoint::from_bytes(&corrupt).is_err(), "flip at {at}");
        }
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn unencodable_profile_degrades_to_a_typed_error() {
        use ens_filter::PersistErrorKind;

        let s = schema();
        let cp = Checkpoint {
            schema: s.clone(),
            last_lsn: 1,
            next_sub: 1,
            sequence: 0,
            shards: vec![CheckpointShard {
                tree: TreeConfig::default(),
                filter: Vec::new(),
                base: vec![CheckpointEntry {
                    id: 0,
                    weight: 1.0,
                    tombstoned: false,
                    profile: profile(&s, 10),
                }],
                overlay: Vec::new(),
            }],
        };
        // Sanity: encodable without the seam.
        assert!(cp.to_bytes().is_ok());

        FORCE_UNENCODABLE.with(|f| f.set(true));
        let err = cp.to_bytes().expect_err("unencodable must fail, not panic");
        FORCE_UNENCODABLE.with(|f| f.set(false));
        assert_eq!(err.kind(), PersistErrorKind::Unencodable);
        assert!(
            err.message().contains("no checkpoint encoding"),
            "{}",
            err.message()
        );
        // The byte-level failure class is distinct from corruption.
        let corrupt = Checkpoint::from_bytes(&[1, 2, 3]).expect_err("corrupt");
        assert!(matches!(corrupt, crate::ServiceError::Persist(_)));
    }
}
