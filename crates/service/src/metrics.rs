use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Lock-free service counters.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub events_published: AtomicU64,
    pub notifications_sent: AtomicU64,
    pub total_ops: AtomicU64,
    pub dropped_notifications: AtomicU64,
    pub quenched_events: AtomicU64,
}

impl Metrics {
    pub(crate) fn snapshot(&self, rebuilds: u64, subscriptions: usize) -> MetricsSnapshot {
        MetricsSnapshot {
            events_published: self.events_published.load(Ordering::Relaxed),
            notifications_sent: self.notifications_sent.load(Ordering::Relaxed),
            total_ops: self.total_ops.load(Ordering::Relaxed),
            dropped_notifications: self.dropped_notifications.load(Ordering::Relaxed),
            quenched_events: self.quenched_events.load(Ordering::Relaxed),
            tree_rebuilds: rebuilds,
            subscriptions,
        }
    }
}

/// A point-in-time view of the broker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Events accepted by `publish`.
    pub events_published: u64,
    /// Notifications delivered to subscriber channels.
    pub notifications_sent: u64,
    /// Total comparison operations spent filtering.
    pub total_ops: u64,
    /// Notifications dropped because the subscriber hung up.
    pub dropped_notifications: u64,
    /// Events rejected by the quenching pre-filter.
    pub quenched_events: u64,
    /// Number of adaptive tree rebuilds.
    pub tree_rebuilds: u64,
    /// Live subscriptions at snapshot time.
    pub subscriptions: usize,
}

impl MetricsSnapshot {
    /// Average comparison operations per published event.
    #[must_use]
    pub fn avg_ops_per_event(&self) -> f64 {
        if self.events_published == 0 {
            0.0
        } else {
            self.total_ops as f64 / self.events_published as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_average() {
        let m = Metrics::default();
        m.events_published.store(4, Ordering::Relaxed);
        m.total_ops.store(10, Ordering::Relaxed);
        let s = m.snapshot(2, 3);
        assert_eq!(s.tree_rebuilds, 2);
        assert_eq!(s.subscriptions, 3);
        assert!((s.avg_ops_per_event() - 2.5).abs() < 1e-12);
        let empty = Metrics::default().snapshot(0, 0);
        assert_eq!(empty.avg_ops_per_event(), 0.0);
    }
}
