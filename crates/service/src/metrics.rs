use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::broker::Broker;

/// Lock-free service counters.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub events_published: AtomicU64,
    pub notifications_sent: AtomicU64,
    pub total_ops: AtomicU64,
    /// The overlay side-index's share of `total_ops` — what matching
    /// the not-yet-compacted subscriptions cost.
    pub overlay_ops: AtomicU64,
    /// Events that entered through `publish_batch` (block matching
    /// engine) rather than the single-event path.
    pub batch_events: AtomicU64,
    pub dropped_notifications: AtomicU64,
    /// Notifications lost to a bounded channel's overflow policy
    /// (`DropOldest`/`DropNewest` evictions; `Disconnect` overflows
    /// count under `dropped_notifications` once the subscriber is
    /// garbage-collected).
    pub overflow_dropped: AtomicU64,
    /// Batch shard workers that panicked and were isolated (the
    /// remaining shards still delivered).
    pub shard_panics: AtomicU64,
    pub quenched_events: AtomicU64,
    /// Adaptive (drift-triggered) tree rebuilds across all shards.
    pub tree_rebuilds: AtomicU64,
    /// Churn-triggered compactions (overlay/tombstone thresholds).
    pub overlay_compactions: AtomicU64,
    /// Accepted self-tuning retunes (drift rebuilds whose configuration
    /// was chosen by the cost model).
    pub retunes: AtomicU64,
    /// Drift triggers the tuner declined (predicted improvement below
    /// threshold — no rebuild happened).
    pub retunes_declined: AtomicU64,
    /// Wall-clock nanoseconds spent inside tuning evaluations (the
    /// estimation/pricing overhead of the self-tuning loop).
    pub tuning_nanos: AtomicU64,
    /// `f64::to_bits` of the last accepted retune's predicted expected
    /// comparison operations per event (cost model Eq. 2).
    pub predicted_ops_bits: AtomicU64,
    /// WAL frames recovered by salvage after skipping corruption
    /// (set once at `Broker::open`).
    pub wal_salvaged_frames: AtomicU64,
    /// WAL bytes quarantined (skipped as unreadable) by salvage
    /// (set once at `Broker::open`).
    pub wal_quarantined_bytes: AtomicU64,
    /// Checkpoint generations that could not be loaded during recovery
    /// (corrupt or unreadable), forcing a fall-back to an older one.
    pub checkpoint_fallbacks: AtomicU64,
    /// 1 while the broker is serving with durability degraded (a WAL
    /// append failed); cleared by the next successful checkpoint.
    pub durability_degraded: AtomicU64,
}

impl Metrics {
    pub(crate) fn snapshot(&self, broker: &Broker) -> MetricsSnapshot {
        MetricsSnapshot {
            events_published: self.events_published.load(Ordering::Relaxed),
            notifications_sent: self.notifications_sent.load(Ordering::Relaxed),
            total_ops: self.total_ops.load(Ordering::Relaxed),
            overlay_ops: self.overlay_ops.load(Ordering::Relaxed),
            batch_events: self.batch_events.load(Ordering::Relaxed),
            dropped_notifications: self.dropped_notifications.load(Ordering::Relaxed),
            overflow_dropped: self.overflow_dropped.load(Ordering::Relaxed),
            shard_panics: self.shard_panics.load(Ordering::Relaxed),
            quenched_events: self.quenched_events.load(Ordering::Relaxed),
            tree_rebuilds: self.tree_rebuilds.load(Ordering::Relaxed),
            overlay_compactions: self.overlay_compactions.load(Ordering::Relaxed),
            retunes: self.retunes.load(Ordering::Relaxed),
            retunes_declined: self.retunes_declined.load(Ordering::Relaxed),
            tuning_nanos: self.tuning_nanos.load(Ordering::Relaxed),
            predicted_ops_per_event: f64::from_bits(
                self.predicted_ops_bits.load(Ordering::Relaxed),
            ),
            wal_salvaged_frames: self.wal_salvaged_frames.load(Ordering::Relaxed),
            wal_quarantined_bytes: self.wal_quarantined_bytes.load(Ordering::Relaxed),
            checkpoint_fallbacks: self.checkpoint_fallbacks.load(Ordering::Relaxed),
            durability_degraded: self.durability_degraded.load(Ordering::Relaxed) != 0,
            subscriptions: broker.subscription_count(),
        }
    }
}

/// A point-in-time view of the broker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Events accepted by `publish`.
    pub events_published: u64,
    /// Notifications delivered to subscriber channels.
    pub notifications_sent: u64,
    /// Total comparison operations spent filtering.
    pub total_ops: u64,
    /// The overlay side-index's share of [`MetricsSnapshot::total_ops`]:
    /// operations spent matching subscriptions that arrived since the
    /// last compaction. Watching
    /// [`MetricsSnapshot::overlay_ops_per_event`] between compactions
    /// makes the overlay's matching-cost decay observable.
    pub overlay_ops: u64,
    /// Events published through `publish_batch` — the block matching
    /// engine — as opposed to the single-event path.
    pub batch_events: u64,
    /// Notifications dropped because the subscriber hung up (or was
    /// disconnected by an `OverflowPolicy::Disconnect` overflow).
    pub dropped_notifications: u64,
    /// Notifications lost to a bounded subscriber channel's overflow
    /// policy: `DropOldest` evictions and `DropNewest` refusals. Zero
    /// with unbounded channels (`notify_capacity: 0`, the default).
    #[serde(default)]
    pub overflow_dropped: u64,
    /// Batch shard workers that panicked and were isolated — the
    /// panicking shard delivered nothing for its slice of the batch,
    /// every other shard delivered normally.
    #[serde(default)]
    pub shard_panics: u64,
    /// Events rejected by the quenching pre-filter.
    pub quenched_events: u64,
    /// Number of adaptive (drift-triggered) tree rebuilds, including
    /// accepted retunes.
    pub tree_rebuilds: u64,
    /// Number of churn-triggered compactions (overlay/tombstone
    /// thresholds folding the subscription deltas into the tree).
    pub overlay_compactions: u64,
    /// Accepted self-tuning retunes: drift rebuilds whose
    /// (search-strategy, attribute-order) shape was re-chosen by the
    /// cost model under the online distribution estimate.
    pub retunes: u64,
    /// Drift triggers the tuner declined because the predicted cost
    /// improvement did not clear `TuningPolicy::min_improvement`.
    pub retunes_declined: u64,
    /// Total wall-clock nanoseconds spent pricing retune candidates —
    /// the overhead the self-tuning loop adds to the write path.
    pub tuning_nanos: u64,
    /// The cost model's predicted expected comparison operations per
    /// event for the most recently accepted retune (0 before any
    /// retune). Compare against [`MetricsSnapshot::avg_ops_per_event`]
    /// measured *after* the retune to judge estimate quality.
    pub predicted_ops_per_event: f64,
    /// WAL frames recovered by salvage mode at the last `Broker::open`:
    /// valid frames found *after* skipping at least one corrupt region.
    /// Zero on a clean log.
    #[serde(default)]
    pub wal_salvaged_frames: u64,
    /// WAL bytes quarantined at the last `Broker::open` — interior
    /// regions salvage skipped as unreadable (CRC-corrupt or
    /// unparsable) on its way to the next valid frame boundary.
    #[serde(default)]
    pub wal_quarantined_bytes: u64,
    /// Checkpoint generations recovery had to skip (corrupt or
    /// unreadable) before finding a loadable one at the last
    /// `Broker::open`. Zero when the newest generation loaded cleanly.
    #[serde(default)]
    pub checkpoint_fallbacks: u64,
    /// Whether the broker is currently serving with durability
    /// degraded: a WAL append failed (ENOSPC, EIO) after the last
    /// successful checkpoint, so recent acknowledged-in-memory changes
    /// may not survive a crash. Cleared by the next successful
    /// checkpoint, which captures the full in-memory state.
    #[serde(default)]
    pub durability_degraded: bool,
    /// Live subscriptions at snapshot time.
    pub subscriptions: usize,
}

impl MetricsSnapshot {
    /// Average comparison operations per published event.
    #[must_use]
    pub fn avg_ops_per_event(&self) -> f64 {
        if self.events_published == 0 {
            0.0
        } else {
            self.total_ops as f64 / self.events_published as f64
        }
    }

    /// Average overlay (incremental-subscription side-index) comparison
    /// operations per published event. Rises while churn accumulates in
    /// the overlay and drops back to ~0 after a compaction, so plotting
    /// it over time shows the decay the counting index bounds.
    #[must_use]
    pub fn overlay_ops_per_event(&self) -> f64 {
        if self.events_published == 0 {
            0.0
        } else {
            self.overlay_ops as f64 / self.events_published as f64
        }
    }

    /// Average notifications delivered per published event (the fan-out
    /// the filter actually produced).
    #[must_use]
    pub fn avg_notifications_per_event(&self) -> f64 {
        if self.events_published == 0 {
            0.0
        } else {
            self.notifications_sent as f64 / self.events_published as f64
        }
    }

    /// Average tuning (estimation + candidate pricing) overhead per
    /// published event, in nanoseconds. This is the price of the
    /// self-tuning loop amortised over traffic; it only accrues when a
    /// drift trigger fires.
    #[must_use]
    pub fn tuning_ns_per_event(&self) -> f64 {
        if self.events_published == 0 {
            0.0
        } else {
            self.tuning_nanos as f64 / self.events_published as f64
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    /// One-line operational summary, e.g.
    /// `events=100 batch=64 notifs=250 (2.50/ev) ops=1200 (12.00/ev) overlay_ops=40 (0.40/ev) quenched=3 dropped=0 overflow=0 panics=0 rebuilds=1 compactions=4 retunes=1/2 (pred 3.10 ops/ev) wal_salvaged=0 wal_quarantined=0 cp_fallbacks=0 degraded=false subs=42`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events={} batch={} notifs={} ({:.2}/ev) ops={} ({:.2}/ev) overlay_ops={} ({:.2}/ev) quenched={} dropped={} overflow={} panics={} rebuilds={} compactions={} retunes={}/{} (pred {:.2} ops/ev) wal_salvaged={} wal_quarantined={} cp_fallbacks={} degraded={} subs={}",
            self.events_published,
            self.batch_events,
            self.notifications_sent,
            self.avg_notifications_per_event(),
            self.total_ops,
            self.avg_ops_per_event(),
            self.overlay_ops,
            self.overlay_ops_per_event(),
            self.quenched_events,
            self.dropped_notifications,
            self.overflow_dropped,
            self.shard_panics,
            self.tree_rebuilds,
            self.overlay_compactions,
            self.retunes,
            self.retunes + self.retunes_declined,
            self.predicted_ops_per_event,
            self.wal_salvaged_frames,
            self.wal_quarantined_bytes,
            self.checkpoint_fallbacks,
            self.durability_degraded,
            self.subscriptions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BrokerConfig;
    use ens_types::{Domain, Event, Predicate, Schema};

    fn broker() -> Broker {
        let schema = Schema::builder()
            .attribute("x", Domain::int(0, 99))
            .unwrap()
            .build();
        Broker::new(&schema, BrokerConfig::default()).unwrap()
    }

    #[test]
    fn snapshot_averages_and_display() {
        let b = broker();
        let _sub = b
            .subscribe(|p| p.predicate("x", Predicate::ge(50)))
            .unwrap();
        for x in [10, 60, 70, 80] {
            let e = Event::builder(b.schema()).value("x", x).unwrap().build();
            b.publish(&e).unwrap();
        }
        let s = b.metrics();
        assert_eq!(s.events_published, 4);
        assert_eq!(s.notifications_sent, 3);
        assert!((s.avg_notifications_per_event() - 0.75).abs() < 1e-12);
        assert!(s.avg_ops_per_event() > 0.0);
        assert_eq!(s.subscriptions, 1);
        let line = s.to_string();
        assert!(line.contains("events=4"), "{line}");
        assert!(line.contains("(0.75/ev)"), "{line}");
        assert!(line.contains("subs=1"), "{line}");
    }

    #[test]
    fn overlay_and_batch_counters_accrue() {
        use ens_filter::RebuildPolicy;
        use std::sync::Arc;

        let schema = Schema::builder()
            .attribute("x", Domain::int(0, 99))
            .unwrap()
            .build();
        // Push the compaction threshold out so the subscription stays in
        // the overlay side-index.
        let b = Broker::new(
            &schema,
            BrokerConfig {
                rebuild: RebuildPolicy {
                    max_overlay: usize::MAX,
                    ..RebuildPolicy::default()
                },
                ..BrokerConfig::default()
            },
        )
        .unwrap();
        // First subscribe compacts (base bootstrap); the second one
        // lands in the overlay.
        let _a = b
            .subscribe(|p| p.predicate("x", Predicate::lt(10)))
            .unwrap();
        let _sub = b
            .subscribe(|p| p.predicate("x", Predicate::ge(50)))
            .unwrap();
        let events: Vec<Arc<Event>> = [10i64, 60, 70]
            .iter()
            .map(|x| Arc::new(Event::builder(b.schema()).value("x", *x).unwrap().build()))
            .collect();
        b.publish_shared(Arc::clone(&events[0])).unwrap();
        b.publish_batch(&events[1..]).unwrap();
        let s = b.metrics();
        assert_eq!(s.events_published, 3);
        assert_eq!(s.batch_events, 2);
        assert!(s.overlay_ops > 0, "{s:?}");
        assert!(s.overlay_ops_per_event() > 0.0);
        assert!(s.overlay_ops <= s.total_ops);
        let line = s.to_string();
        assert!(line.contains("batch=2"), "{line}");
        assert!(line.contains("overlay_ops="), "{line}");
    }

    #[test]
    fn empty_broker_snapshot_is_zero() {
        let s = broker().metrics();
        assert_eq!(s.avg_ops_per_event(), 0.0);
        assert_eq!(s.avg_notifications_per_event(), 0.0);
        assert_eq!(s.events_published, 0);
        assert_eq!(s.subscriptions, 0);
    }
}
