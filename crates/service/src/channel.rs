//! Bounded MPMC notification channels with explicit overflow policies.
//!
//! The broker used to hand every subscriber an unbounded queue, which
//! turns one stalled consumer into unbounded memory growth. This
//! module supplies the replacement: a small MPMC channel whose `send`
//! never blocks the publishing hot path and instead resolves overflow
//! according to a configured [`OverflowPolicy`] — evict the oldest
//! queued notification, refuse the newest, or sever the channel so the
//! broker's dead-subscriber garbage collection prunes the
//! subscription.
//!
//! `DropOldest` is why this is hand-rolled rather than a bounded
//! channel from a library shim: eviction pops from the *send* side,
//! an operation classical bounded channels do not expose.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a bounded subscriber channel does when a send finds it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Evict the oldest queued notification to admit the new one: the
    /// consumer keeps seeing the freshest events at the price of a gap
    /// (the default — matches a monitoring consumer that only cares
    /// about current state).
    #[default]
    DropOldest,
    /// Refuse the new notification and keep the queued backlog intact:
    /// the consumer drains a contiguous prefix and misses the tail.
    DropNewest,
    /// Sever the channel: the subscriber is treated as hung-up, and
    /// the broker's dead-subscriber garbage collection cancels the
    /// subscription on this publish.
    Disconnect,
}

/// How a send was resolved (the broker turns these into metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendOutcome {
    /// Queued without loss.
    Delivered,
    /// Queued, but one previously queued notification was evicted
    /// (`DropOldest`) — or the new one was refused (`DropNewest`).
    /// Either way exactly one notification was lost.
    DroppedOne,
}

/// The channel is severed: every receiver is gone, or an overflow
/// under [`OverflowPolicy::Disconnect`] closed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Disconnected;

struct State<T> {
    buf: VecDeque<T>,
    /// Set by an overflow under [`OverflowPolicy::Disconnect`]; once
    /// closed the channel stays closed.
    closed: bool,
    /// Notifications lost to the overflow policy on this channel.
    dropped: u64,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Inner<T> {
    fn state(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Creates a notification channel. `capacity == 0` means unbounded
/// (the seed behaviour); otherwise at most `capacity` notifications
/// are queued and `policy` resolves overflow.
pub(crate) fn channel<T>(capacity: usize, policy: OverflowPolicy) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            buf: VecDeque::new(),
            closed: false,
            dropped: 0,
        }),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
            capacity,
            policy,
        },
        Receiver { inner },
    )
}

/// The broker-side half: owned by dispatch entries.
pub(crate) struct Sender<T> {
    inner: Arc<Inner<T>>,
    capacity: usize,
    policy: OverflowPolicy,
}

/// The subscriber-side half, wrapped by
/// [`Subscriber`](crate::Subscriber).
pub(crate) struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a notification without ever blocking. Overflow is
    /// resolved by the channel's policy; `Err` means the channel is
    /// severed and the subscription should be garbage-collected.
    pub(crate) fn send(&self, msg: T) -> Result<SendOutcome, Disconnected> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(Disconnected);
        }
        let mut s = self.inner.state();
        if s.closed {
            return Err(Disconnected);
        }
        let outcome = if self.capacity > 0 && s.buf.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::DropOldest => {
                    s.buf.pop_front();
                    s.buf.push_back(msg);
                    s.dropped += 1;
                    SendOutcome::DroppedOne
                }
                OverflowPolicy::DropNewest => {
                    s.dropped += 1;
                    SendOutcome::DroppedOne
                }
                OverflowPolicy::Disconnect => {
                    s.closed = true;
                    s.buf.clear();
                    drop(s);
                    self.inner.ready.notify_all();
                    return Err(Disconnected);
                }
            }
        } else {
            s.buf.push_back(msg);
            SendOutcome::Delivered
        };
        drop(s);
        self.inner.ready.notify_one();
        Ok(outcome)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            inner: Arc::clone(&self.inner),
            capacity: self.capacity,
            policy: self.policy,
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they observe the
            // disconnect.
            self.inner.ready.notify_all();
        }
    }
}

/// Why [`Receiver::try_recv`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Nothing queued and the channel is severed (every sender gone,
    /// or closed by [`OverflowPolicy::Disconnect`]).
    Disconnected,
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub(crate) fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut s = self.inner.state();
        if let Some(msg) = s.buf.pop_front() {
            return Ok(msg);
        }
        if s.closed || self.inner.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a timeout. `None` on timeout or
    /// disconnect.
    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now().checked_add(timeout);
        let mut s = self.inner.state();
        loop {
            if let Some(msg) = s.buf.pop_front() {
                return Some(msg);
            }
            if s.closed || self.inner.senders.load(Ordering::Acquire) == 0 {
                return None;
            }
            let wait = match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    deadline - now
                }
                // Unrepresentable deadline: wait in long slices.
                None => Duration::from_secs(3600),
            };
            let (guard, _timed_out) = self
                .inner
                .ready
                .wait_timeout(s, wait)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
    }

    /// Number of queued notifications.
    pub(crate) fn len(&self) -> usize {
        self.inner.state().buf.len()
    }

    /// Notifications this channel has lost to its overflow policy.
    pub(crate) fn dropped(&self) -> u64 {
        self.inner.state().dropped
    }

    /// Whether the channel is severed (regardless of queued backlog).
    pub(crate) fn is_disconnected(&self) -> bool {
        self.inner.state().closed || self.inner.senders.load(Ordering::Acquire) == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_when_capacity_zero() {
        let (tx, rx) = channel(0, OverflowPolicy::DropOldest);
        for i in 0..1000 {
            assert_eq!(tx.send(i), Ok(SendOutcome::Delivered));
        }
        assert_eq!(rx.len(), 1000);
        assert_eq!(rx.dropped(), 0);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_tail() {
        let (tx, rx) = channel(3, OverflowPolicy::DropOldest);
        for i in 0..10 {
            let out = tx.send(i).unwrap();
            if i < 3 {
                assert_eq!(out, SendOutcome::Delivered);
            } else {
                assert_eq!(out, SendOutcome::DroppedOne);
            }
        }
        assert_eq!(rx.dropped(), 7);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Ok(8));
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn drop_newest_keeps_the_prefix() {
        let (tx, rx) = channel(3, OverflowPolicy::DropNewest);
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.dropped(), 7);
        assert_eq!(rx.try_recv(), Ok(0));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_policy_severs_the_channel() {
        let (tx, rx) = channel(2, OverflowPolicy::Disconnect);
        assert!(tx.send(0).is_ok());
        assert!(tx.send(1).is_ok());
        assert_eq!(tx.send(2), Err(Disconnected));
        // Severed for good: the backlog is gone and later sends fail.
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(tx.send(3), Err(Disconnected));
    }

    #[test]
    fn dropped_receiver_fails_sends() {
        let (tx, rx) = channel(0, OverflowPolicy::DropOldest);
        drop(rx);
        assert_eq!(tx.send(1), Err(Disconnected));
    }

    #[test]
    fn recv_timeout_wakes_on_cross_thread_send() {
        let (tx, rx) = channel(0, OverflowPolicy::DropOldest);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), None);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(99).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Some(99));
        handle.join().unwrap();
    }
}
