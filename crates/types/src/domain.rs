use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{FiniteF64, TypesError, Value};

/// The set of admissible values of an attribute, as a finite ordered grid.
///
/// The distribution-based cost model of Hinze & Bittner works with finite
/// domain sizes `d` and zero-subdomain sizes `d0`; every `Domain` therefore
/// exposes a bijection between its points and the index range `0..d`
/// ([`Domain::index_of`] / [`Domain::value_at`]). Continuous measurement
/// ranges are modelled as float grids with an explicit resolution `step`,
/// which is how the paper's example domains (temperature in °C, humidity
/// in %) are discretised.
///
/// # Example
///
/// ```
/// use ens_types::{Domain, Value};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let temp = Domain::int(-30, 50);
/// assert_eq!(temp.size(), 81);
/// assert_eq!(temp.index_of(&Value::Int(-30))?, 0);
/// assert_eq!(temp.value_at(80), Value::Int(50));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Domain {
    /// Integers `lo..=hi`.
    Int {
        /// Smallest admissible value.
        lo: i64,
        /// Largest admissible value.
        hi: i64,
    },
    /// Floats `lo, lo+step, …` up to and including (approximately) `hi`.
    Float {
        /// Smallest admissible value.
        lo: FiniteF64,
        /// Largest admissible value.
        hi: FiniteF64,
        /// Grid resolution (strictly positive).
        step: FiniteF64,
        /// Number of grid points (derived, cached).
        size: u64,
    },
    /// An enumerated set of named categories, ordered as listed.
    Categorical(Categories),
    /// The two booleans, ordered `false < true`.
    Bool,
}

/// The category list of a [`Domain::Categorical`], with a first-byte
/// dispatch table so value-to-index resolution is one table load plus
/// (usually) a single string comparison instead of a linear scan.
///
/// Serialises transparently as the plain list of names.
#[derive(Debug, Clone)]
pub struct Categories {
    names: Vec<String>,
    /// `dispatch[b]`: `DISPATCH_NONE` if no category starts with byte
    /// `b`, `DISPATCH_SCAN` if several do (fall back to a linear scan),
    /// otherwise the unique category's index.
    dispatch: Box<[u16; 256]>,
}

const DISPATCH_NONE: u16 = u16::MAX;
const DISPATCH_SCAN: u16 = u16::MAX - 1;

impl Categories {
    fn new(names: Vec<String>) -> Self {
        let mut dispatch = Box::new([DISPATCH_NONE; 256]);
        for (i, name) in names.iter().enumerate() {
            let Some(&b) = name.as_bytes().first() else {
                continue; // the empty string takes the scan path
            };
            // Indices colliding with the sentinels (>= DISPATCH_SCAN)
            // must fall back to the scan path, not masquerade as them.
            dispatch[b as usize] = match (dispatch[b as usize], u16::try_from(i)) {
                (DISPATCH_NONE, Ok(i)) if i < DISPATCH_SCAN => i,
                _ => DISPATCH_SCAN,
            };
        }
        Categories { names, dispatch }
    }

    /// The category names, in domain order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of `s`, if it is a category.
    #[must_use]
    pub fn index_of(&self, s: &str) -> Option<u64> {
        match s.as_bytes().first() {
            Some(&b) => match self.dispatch[b as usize] {
                DISPATCH_NONE => None,
                DISPATCH_SCAN => self.names.iter().position(|c| c == s).map(|i| i as u64),
                i => (self.names[i as usize] == s).then_some(u64::from(i)),
            },
            None => self
                .names
                .iter()
                .position(String::is_empty)
                .map(|i| i as u64),
        }
    }
}

impl PartialEq for Categories {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Serialize for Categories {
    fn __to_value(&self) -> serde::__private::Value {
        self.names.__to_value()
    }
}

impl<'de> Deserialize<'de> for Categories {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        Ok(Categories::new(Vec::<String>::deserialize(deserializer)?))
    }
}

impl Domain {
    /// Integer domain `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`; use [`Domain::try_int`] for fallible
    /// construction.
    #[must_use]
    pub fn int(lo: i64, hi: i64) -> Self {
        Domain::try_int(lo, hi).expect("integer domain bounds must satisfy lo <= hi")
    }

    /// Fallible integer domain construction.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::EmptyDomain`] if `hi < lo`.
    pub fn try_int(lo: i64, hi: i64) -> Result<Self, TypesError> {
        if hi < lo {
            return Err(TypesError::EmptyDomain(format!(
                "Int {{ lo: {lo}, hi: {hi} }}"
            )));
        }
        Ok(Domain::Int { lo, hi })
    }

    /// Float grid domain from `lo` to `hi` with resolution `step`.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::NonFiniteValue`] for non-finite inputs and
    /// [`TypesError::EmptyDomain`] if `hi < lo` or `step <= 0`.
    pub fn float(lo: f64, hi: f64, step: f64) -> Result<Self, TypesError> {
        let lo = FiniteF64::new(lo)?;
        let hi = FiniteF64::new(hi)?;
        let step = FiniteF64::new(step)?;
        if hi.get() < lo.get() || step.get() <= 0.0 {
            return Err(TypesError::EmptyDomain(format!(
                "Float {{ lo: {lo}, hi: {hi}, step: {step} }}"
            )));
        }
        let size = ((hi.get() - lo.get()) / step.get()).round() as u64 + 1;
        Ok(Domain::Float { lo, hi, step, size })
    }

    /// Categorical domain from a list of category names (order defines the
    /// natural order of the domain).
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::EmptyDomain`] for an empty list and
    /// [`TypesError::DuplicateAttribute`] if a category repeats.
    pub fn categorical<I, S>(categories: I) -> Result<Self, TypesError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cats: Vec<String> = categories.into_iter().map(Into::into).collect();
        if cats.is_empty() {
            return Err(TypesError::EmptyDomain("Categorical([])".into()));
        }
        for (i, c) in cats.iter().enumerate() {
            if cats[..i].contains(c) {
                return Err(TypesError::DuplicateAttribute(c.clone()));
            }
        }
        Ok(Domain::Categorical(Categories::new(cats)))
    }

    /// Number of points in the domain (the paper's `d`).
    #[must_use]
    pub fn size(&self) -> u64 {
        match self {
            Domain::Int { lo, hi } => (hi - lo) as u64 + 1,
            Domain::Float { size, .. } => *size,
            Domain::Categorical(cats) => cats.names().len() as u64,
            Domain::Bool => 2,
        }
    }

    /// A short name for the domain's kind, used in error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Domain::Int { .. } => "int",
            Domain::Float { .. } => "float",
            Domain::Categorical(_) => "string",
            Domain::Bool => "bool",
        }
    }

    /// Whether `value` has the kind this domain stores.
    #[must_use]
    pub fn accepts_kind(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (Domain::Int { .. }, Value::Int(_))
                | (Domain::Float { .. }, Value::Float(_))
                | (Domain::Categorical(_), Value::Str(_))
                | (Domain::Bool, Value::Bool(_))
        )
    }

    /// Maps a value to its grid index in `0..size()`.
    ///
    /// Float values snap to the nearest grid point.
    ///
    /// Returns `None` if the value has the right kind but lies outside the
    /// domain, and `None` for kind mismatches as well; use
    /// [`Domain::index_of`] to distinguish the two with errors.
    #[must_use]
    pub fn try_index_of(&self, value: &Value) -> Option<u64> {
        match (self, value) {
            (Domain::Int { lo, hi }, Value::Int(x)) => {
                (*lo <= *x && *x <= *hi).then(|| (x - lo) as u64)
            }
            (Domain::Float { lo, step, size, .. }, Value::Float(x)) => {
                let k = ((x.get() - lo.get()) / step.get()).round();
                (k >= 0.0 && (k as u64) < *size).then_some(k as u64)
            }
            (Domain::Categorical(cats), Value::Str(s)) => cats.index_of(s),
            (Domain::Bool, Value::Bool(b)) => Some(u64::from(*b)),
            _ => None,
        }
    }

    /// Maps a value to its grid index, reporting descriptive errors.
    ///
    /// # Errors
    ///
    /// [`TypesError::TypeMismatch`] for kind mismatches,
    /// [`TypesError::OutOfDomain`] for out-of-range values.
    pub fn index_of(&self, value: &Value) -> Result<u64, TypesError> {
        // Happy path first: one match, no kind pre-check.
        if let Some(idx) = self.try_index_of(value) {
            return Ok(idx);
        }
        if self.accepts_kind(value) {
            Err(TypesError::OutOfDomain {
                attribute: String::new(),
                value: value.to_string(),
            })
        } else {
            Err(TypesError::TypeMismatch {
                attribute: String::new(),
                expected: self.kind(),
                found: value.kind().to_owned(),
            })
        }
    }

    /// Maps a grid index back to its value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.size()`.
    #[must_use]
    pub fn value_at(&self, index: u64) -> Value {
        assert!(
            index < self.size(),
            "index {index} out of bounds for domain of size {}",
            self.size()
        );
        match self {
            Domain::Int { lo, .. } => Value::Int(lo + index as i64),
            Domain::Float { lo, step, .. } => {
                let x = lo.get() + index as f64 * step.get();
                Value::Float(FiniteF64::new(x).expect("grid point is finite"))
            }
            Domain::Categorical(cats) => Value::Str(cats.names()[index as usize].clone()),
            Domain::Bool => Value::Bool(index == 1),
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Int { lo, hi } => write!(f, "[{lo}, {hi}]"),
            Domain::Float { lo, hi, step, .. } => write!(f, "[{lo}, {hi}] step {step}"),
            Domain::Categorical(cats) => write!(f, "{{{}}}", cats.names().join(", ")),
            Domain::Bool => write!(f, "{{false, true}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_domain_size_and_indexing() {
        let d = Domain::int(-30, 50);
        assert_eq!(d.size(), 81);
        assert_eq!(d.try_index_of(&Value::Int(-30)), Some(0));
        assert_eq!(d.try_index_of(&Value::Int(50)), Some(80));
        assert_eq!(d.try_index_of(&Value::Int(51)), None);
        assert_eq!(d.value_at(35), Value::Int(5));
    }

    #[test]
    fn int_domain_rejects_reversed_bounds() {
        assert!(Domain::try_int(5, 4).is_err());
        assert!(Domain::try_int(5, 5).is_ok());
    }

    #[test]
    fn float_domain_snaps_to_grid() {
        let d = Domain::float(0.0, 1.0, 0.25).unwrap();
        assert_eq!(d.size(), 5);
        assert_eq!(d.try_index_of(&Value::float(0.26).unwrap()), Some(1));
        assert_eq!(d.try_index_of(&Value::float(1.0).unwrap()), Some(4));
        assert_eq!(d.try_index_of(&Value::float(1.2).unwrap()), None);
        assert_eq!(d.value_at(2), Value::float(0.5).unwrap());
    }

    #[test]
    fn float_domain_invalid_parameters() {
        assert!(Domain::float(0.0, -1.0, 0.1).is_err());
        assert!(Domain::float(0.0, 1.0, 0.0).is_err());
        assert!(Domain::float(0.0, f64::NAN, 0.1).is_err());
    }

    #[test]
    fn categorical_domain() {
        let d = Domain::categorical(["low", "mid", "high"]).unwrap();
        assert_eq!(d.size(), 3);
        assert_eq!(d.try_index_of(&Value::from("mid")), Some(1));
        assert_eq!(d.try_index_of(&Value::from("none")), None);
        assert_eq!(d.value_at(2), Value::from("high"));
        assert!(Domain::categorical(["a", "a"]).is_err());
        assert!(Domain::categorical(Vec::<String>::new()).is_err());
    }

    #[test]
    fn bool_domain() {
        let d = Domain::Bool;
        assert_eq!(d.size(), 2);
        assert_eq!(d.try_index_of(&Value::Bool(false)), Some(0));
        assert_eq!(d.try_index_of(&Value::Bool(true)), Some(1));
        assert_eq!(d.value_at(1), Value::Bool(true));
    }

    #[test]
    fn index_of_reports_kind_mismatch() {
        let d = Domain::int(0, 10);
        let err = d.index_of(&Value::from("five")).unwrap_err();
        assert!(matches!(err, TypesError::TypeMismatch { .. }));
        let err = d.index_of(&Value::Int(11)).unwrap_err();
        assert!(matches!(err, TypesError::OutOfDomain { .. }));
    }

    #[test]
    fn round_trip_all_indices() {
        let domains = [
            Domain::int(-3, 3),
            Domain::float(0.0, 2.0, 0.5).unwrap(),
            Domain::categorical(["a", "b", "c"]).unwrap(),
            Domain::Bool,
        ];
        for d in &domains {
            for i in 0..d.size() {
                let v = d.value_at(i);
                assert_eq!(d.try_index_of(&v), Some(i), "domain {d}, index {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn value_at_out_of_bounds_panics() {
        let _ = Domain::int(0, 1).value_at(2);
    }

    #[test]
    fn serde_round_trip() {
        let d = Domain::float(0.0, 1.0, 0.25).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: Domain = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
