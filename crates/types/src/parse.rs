//! Textual profile and event syntax.
//!
//! The paper writes profiles and events as
//! `profile(temperature >= 35; humidity = 90)` and
//! `event(temperature = 30; humidity = 90; radiation = 2)`. This module
//! parses exactly that surface syntax (a small profile-definition
//! language, cf. §1 "various profile definition languages"):
//!
//! ```text
//! profile( clause ; clause ; … )
//! clause  = attr op value
//!         | attr in [lo, hi]
//!         | attr in {v1, v2, …}
//!         | attr not in {v1, v2, …}
//!         | attr = *
//! op      = "=" | "!=" | "<" | "<=" | ">" | ">="
//! value   = integer | float | "quoted string" | true | false | bare-word
//! ```
//!
//! Bare words are treated as categorical (string) values. Whether an
//! unquoted number is an integer or float is decided by the attribute's
//! domain, so `temperature = 30` works for both int and float-grid
//! domains.
//!
//! # Example
//!
//! ```
//! use ens_types::{Schema, Domain};
//! use ens_types::parse::{parse_profile, parse_event};
//!
//! # fn main() -> Result<(), ens_types::TypesError> {
//! let schema = Schema::builder()
//!     .attribute("temperature", Domain::int(-30, 50))?
//!     .attribute("humidity", Domain::int(0, 100))?
//!     .build();
//! let p = parse_profile(&schema, "profile(temperature >= 35; humidity = 90)", 0.into())?;
//! let e = parse_event(&schema, "event(temperature = 40; humidity = 90)")?;
//! assert!(p.matches(&schema, &e)?);
//! # Ok(())
//! # }
//! ```

use crate::{
    Domain, Event, EventBuilder, Predicate, Profile, ProfileBuilder, ProfileId, Schema, TypesError,
    Value,
};

/// Parses the textual profile syntax shown in the module docs.
///
/// # Errors
///
/// Returns [`TypesError::Parse`] for syntax errors and the usual schema /
/// domain errors for unknown attributes or out-of-range values.
pub fn parse_profile(schema: &Schema, input: &str, id: ProfileId) -> Result<Profile, TypesError> {
    let mut p = Parser::new(input);
    p.expect_ident("profile")?;
    p.expect(Token::LParen)?;
    let mut builder = Profile::builder(schema);
    if !p.peek_is(Token::RParen) {
        loop {
            builder = parse_clause(schema, &mut p, builder)?;
            if p.peek_is(Token::Semi) {
                p.next()?;
            } else {
                break;
            }
        }
    }
    p.expect(Token::RParen)?;
    p.expect_end()?;
    Ok(builder.build(id))
}

/// Parses the textual event syntax shown in the module docs.
///
/// # Errors
///
/// Returns [`TypesError::Parse`] for syntax errors and the usual schema /
/// domain errors for unknown attributes or out-of-range values.
pub fn parse_event(schema: &Schema, input: &str) -> Result<Event, TypesError> {
    let mut p = Parser::new(input);
    p.expect_ident("event")?;
    p.expect(Token::LParen)?;
    let mut builder = Event::builder(schema);
    if !p.peek_is(Token::RParen) {
        loop {
            builder = parse_assignment(schema, &mut p, builder)?;
            if p.peek_is(Token::Semi) {
                p.next()?;
            } else {
                break;
            }
        }
    }
    p.expect(Token::RParen)?;
    p.expect_end()?;
    Ok(builder.build())
}

fn parse_clause<'a>(
    schema: &'a Schema,
    p: &mut Parser<'_>,
    builder: ProfileBuilder<'a>,
) -> Result<ProfileBuilder<'a>, TypesError> {
    let (name, name_pos) = p.ident()?;
    let id = schema
        .attr(&name)
        .ok_or(TypesError::UnknownAttribute(name.clone()))?;
    let domain = schema.attribute(id).domain();
    let tok = p.next()?;
    let pred = match tok {
        Token::Op(op) => {
            if op == "=" && p.peek_is(Token::Star) {
                p.next()?;
                Predicate::DontCare
            } else {
                let v = parse_value(domain, p)?;
                match op {
                    "=" => Predicate::Eq(v),
                    "!=" => Predicate::Ne(v),
                    "<" => Predicate::Lt(v),
                    "<=" => Predicate::Le(v),
                    ">" => Predicate::Gt(v),
                    ">=" => Predicate::Ge(v),
                    _ => unreachable!("lexer only produces the six ops"),
                }
            }
        }
        Token::Ident(word) if word == "in" => parse_in(domain, p, false)?,
        Token::Ident(word) if word == "not" => {
            p.expect_ident("in")?;
            parse_in(domain, p, true)?
        }
        other => {
            return Err(p.error(
                format!("expected operator after `{name}`, found {other:?}"),
                name_pos,
            ))
        }
    };
    builder.predicate_by_id(id, pred)
}

fn parse_in(domain: &Domain, p: &mut Parser<'_>, negated: bool) -> Result<Predicate, TypesError> {
    match p.next()? {
        Token::LBracket => {
            if negated {
                return Err(p.error_here("`not in` requires a {…} value set".into()));
            }
            let lo = parse_value(domain, p)?;
            p.expect(Token::Comma)?;
            let hi = parse_value(domain, p)?;
            p.expect(Token::RBracket)?;
            Ok(Predicate::Between(lo, hi))
        }
        Token::LBrace => {
            let mut vs = vec![parse_value(domain, p)?];
            while p.peek_is(Token::Comma) {
                p.next()?;
                vs.push(parse_value(domain, p)?);
            }
            p.expect(Token::RBrace)?;
            Ok(if negated {
                Predicate::NotIn(vs)
            } else {
                Predicate::In(vs)
            })
        }
        other => Err(p.error_here(format!("expected `[` or `{{` after `in`, found {other:?}"))),
    }
}

fn parse_assignment<'a>(
    schema: &'a Schema,
    p: &mut Parser<'_>,
    builder: EventBuilder<'a>,
) -> Result<EventBuilder<'a>, TypesError> {
    let (name, _) = p.ident()?;
    let id = schema
        .attr(&name)
        .ok_or(TypesError::UnknownAttribute(name.clone()))?;
    match p.next()? {
        Token::Op("=") => {}
        other => return Err(p.error_here(format!("expected `=` after `{name}`, found {other:?}"))),
    }
    let v = parse_value(schema.attribute(id).domain(), p)?;
    builder.value_by_id(id, v)
}

fn parse_value(domain: &Domain, p: &mut Parser<'_>) -> Result<Value, TypesError> {
    match p.next()? {
        Token::Number(text) => {
            // Decide int vs float from the target domain.
            match domain {
                Domain::Float { .. } => {
                    let x: f64 = text
                        .parse()
                        .map_err(|_| p.error_here(format!("invalid number `{text}`")))?;
                    Value::float(x)
                }
                _ => {
                    let x: i64 = text.parse().map_err(|_| {
                        p.error_here(format!("expected an integer for this domain, got `{text}`"))
                    })?;
                    Ok(Value::Int(x))
                }
            }
        }
        Token::Str(s) => Ok(Value::Str(s)),
        Token::Ident(word) if word == "true" => Ok(Value::Bool(true)),
        Token::Ident(word) if word == "false" => Ok(Value::Bool(false)),
        Token::Ident(word) => Ok(Value::Str(word)),
        other => Err(p.error_here(format!("expected a value, found {other:?}"))),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Str(String),
    Op(&'static str),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Star,
    End,
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: String, position: usize) -> TypesError {
        TypesError::Parse { message, position }
    }

    fn error_here(&self, message: String) -> TypesError {
        self.error(message, self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<Token, TypesError> {
        self.skip_ws();
        if self.pos >= self.bytes.len() {
            return Ok(Token::End);
        }
        let start = self.pos;
        let c = self.bytes[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b'[' => {
                self.pos += 1;
                Token::LBracket
            }
            b']' => {
                self.pos += 1;
                Token::RBracket
            }
            b'{' => {
                self.pos += 1;
                Token::LBrace
            }
            b'}' => {
                self.pos += 1;
                Token::RBrace
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b';' => {
                self.pos += 1;
                Token::Semi
            }
            b'*' => {
                self.pos += 1;
                Token::Star
            }
            b'=' => {
                self.pos += 1;
                Token::Op("=")
            }
            b'!' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Op("!=")
                } else {
                    return Err(self.error("expected `!=`".into(), start));
                }
            }
            b'<' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Op("<=")
                } else {
                    self.pos += 1;
                    Token::Op("<")
                }
            }
            b'>' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Op(">=")
                } else {
                    self.pos += 1;
                    Token::Op(">")
                }
            }
            b'"' => {
                self.pos += 1;
                let s0 = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.error("unterminated string literal".into(), start));
                }
                let s = self.input[s0..self.pos].to_owned();
                self.pos += 1;
                Token::Str(s)
            }
            b'-' | b'+' | b'0'..=b'9' => {
                self.pos += 1;
                while self.pos < self.bytes.len()
                    && matches!(
                        self.bytes[self.pos],
                        b'0'..=b'9' | b'.' | b'e' | b'E' | b'-' | b'+'
                    )
                {
                    // Only allow sign characters right after an exponent.
                    if matches!(self.bytes[self.pos], b'-' | b'+')
                        && !matches!(self.bytes[self.pos - 1], b'e' | b'E')
                    {
                        break;
                    }
                    self.pos += 1;
                }
                Token::Number(self.input[start..self.pos].to_owned())
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_alphanumeric()
                        || self.bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Token::Ident(self.input[start..self.pos].to_owned())
            }
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char), start))
            }
        };
        Ok(tok)
    }

    fn peek(&mut self) -> Result<Token, TypesError> {
        let save = self.pos;
        let tok = self.next();
        self.pos = save;
        tok
    }

    fn peek_is(&mut self, tok: Token) -> bool {
        self.peek().map(|t| t == tok).unwrap_or(false)
    }

    fn expect(&mut self, tok: Token) -> Result<(), TypesError> {
        let at = self.pos;
        let got = self.next()?;
        if got == tok {
            Ok(())
        } else {
            Err(self.error(format!("expected {tok:?}, found {got:?}"), at))
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), TypesError> {
        let at = self.pos;
        match self.next()? {
            Token::Ident(w) if w == word => Ok(()),
            other => Err(self.error(format!("expected `{word}`, found {other:?}"), at)),
        }
    }

    fn expect_end(&mut self) -> Result<(), TypesError> {
        let at = self.pos;
        match self.next()? {
            Token::End => Ok(()),
            other => Err(self.error(format!("trailing input: {other:?}"), at)),
        }
    }

    fn ident(&mut self) -> Result<(String, usize), TypesError> {
        self.skip_ws();
        let at = self.pos;
        match self.next()? {
            Token::Ident(w) => Ok((w, at)),
            other => Err(self.error(format!("expected an identifier, found {other:?}"), at)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, ProfileId, Schema};

    fn schema() -> Schema {
        Schema::builder()
            .attribute("temperature", Domain::int(-30, 50))
            .unwrap()
            .attribute("humidity", Domain::int(0, 100))
            .unwrap()
            .attribute("radiation", Domain::int(1, 100))
            .unwrap()
            .attribute(
                "sky",
                Domain::categorical(["clear", "cloudy", "storm"]).unwrap(),
            )
            .unwrap()
            .attribute("ph", Domain::float(0.0, 14.0, 0.5).unwrap())
            .unwrap()
            .build()
    }

    fn profile(text: &str) -> Profile {
        parse_profile(&schema(), text, ProfileId::new(0)).unwrap()
    }

    #[test]
    fn parses_paper_profiles() {
        let p = profile("profile(temperature >= 35; humidity >= 90)");
        assert_eq!(p.specified_len(), 2);
        let p =
            profile("profile(temperature in [-30, -20]; humidity <= 5; radiation in [40, 100])");
        assert_eq!(p.specified_len(), 3);
        assert_eq!(
            p.predicate(schema().attr("radiation").unwrap()),
            &Predicate::between(40, 100)
        );
    }

    #[test]
    fn parses_dont_care_star() {
        let p = profile("profile(temperature >= 35; radiation = *)");
        assert!(p
            .predicate(schema().attr("radiation").unwrap())
            .is_dont_care());
        assert_eq!(p.specified_len(), 1);
    }

    #[test]
    fn parses_value_sets() {
        let p = profile("profile(sky in {clear, storm})");
        let sky = schema().attr("sky").unwrap();
        assert_eq!(
            p.predicate(sky),
            &Predicate::In(vec![Value::from("clear"), Value::from("storm")])
        );
        let p = profile("profile(sky not in {storm})");
        assert_eq!(
            p.predicate(sky),
            &Predicate::NotIn(vec![Value::from("storm")])
        );
    }

    #[test]
    fn parses_quoted_strings_and_floats() {
        let p = profile("profile(sky = \"cloudy\"; ph <= 7.5)");
        let s = schema();
        assert_eq!(
            p.predicate(s.attr("sky").unwrap()),
            &Predicate::eq("cloudy")
        );
        assert_eq!(
            p.predicate(s.attr("ph").unwrap()),
            &Predicate::Le(Value::float(7.5).unwrap())
        );
    }

    #[test]
    fn parses_all_comparison_operators() {
        for (text, expect) in [
            ("= 5", Predicate::eq(5)),
            ("!= 5", Predicate::ne(5)),
            ("< 5", Predicate::lt(5)),
            ("<= 5", Predicate::le(5)),
            ("> 5", Predicate::gt(5)),
            (">= 5", Predicate::ge(5)),
        ] {
            let p = profile(&format!("profile(humidity {text})"));
            assert_eq!(
                p.predicate(schema().attr("humidity").unwrap()),
                &expect,
                "{text}"
            );
        }
    }

    #[test]
    fn parses_events() {
        let s = schema();
        let e = parse_event(&s, "event(temperature = 30; humidity = 90; radiation = 2)").unwrap();
        assert_eq!(e.specified_len(), 3);
        assert_eq!(e.value(s.attr("humidity").unwrap()), Some(&Value::Int(90)));
        let e = parse_event(&s, "event(sky = storm)").unwrap();
        assert_eq!(e.value(s.attr("sky").unwrap()), Some(&Value::from("storm")));
    }

    #[test]
    fn parses_empty_profile_and_event() {
        assert_eq!(profile("profile()").specified_len(), 0);
        assert_eq!(
            parse_event(&schema(), "event()").unwrap().specified_len(),
            0
        );
    }

    #[test]
    fn negative_numbers_parse() {
        let p = profile("profile(temperature >= -20)");
        assert_eq!(
            p.predicate(schema().attr("temperature").unwrap()),
            &Predicate::ge(-20)
        );
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let s = schema();
        let err = parse_profile(&s, "profile(humidity >< 3)", ProfileId::new(0)).unwrap_err();
        assert!(matches!(err, TypesError::Parse { .. }), "{err:?}");
        let err = parse_profile(&s, "profile(humidity = 3", ProfileId::new(0)).unwrap_err();
        assert!(matches!(err, TypesError::Parse { .. }));
        let err = parse_profile(&s, "profile(humidity = 3) junk", ProfileId::new(0)).unwrap_err();
        assert!(matches!(err, TypesError::Parse { .. }));
        let err = parse_profile(&s, "profile(humidity = \"x", ProfileId::new(0)).unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn semantic_errors_pass_through() {
        let s = schema();
        assert!(matches!(
            parse_profile(&s, "profile(pressure = 3)", ProfileId::new(0)),
            Err(TypesError::UnknownAttribute(_))
        ));
        assert!(matches!(
            parse_profile(&s, "profile(humidity = 1000)", ProfileId::new(0)),
            Err(TypesError::OutOfDomain { .. })
        ));
        assert!(parse_event(&s, "event(humidity = wet)").is_err());
    }

    #[test]
    fn not_in_requires_braces() {
        let s = schema();
        assert!(parse_profile(&s, "profile(humidity not in [1, 2])", ProfileId::new(0)).is_err());
    }

    #[test]
    fn display_and_parse_round_trip() {
        let s = schema();
        let texts = [
            "profile(temperature >= 35; humidity = 90)",
            "profile(sky in {clear, storm})",
            "profile(temperature in [-30, -20]; radiation in [40, 100])",
        ];
        for text in texts {
            let p = parse_profile(&s, text, ProfileId::new(0)).unwrap();
            let rendered = p.display(&s).to_string();
            let again = parse_profile(&s, &rendered, ProfileId::new(0)).unwrap();
            assert_eq!(p.predicates(), again.predicates(), "{text} vs {rendered}");
        }
    }
}
