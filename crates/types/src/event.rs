use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AttrId, Schema, TypesError, Value};

/// A primitive event: one observed state transition, described as a
/// collection of `(attribute, value)` pairs (paper §3, e.g.
/// `event(temperature = 30; humidity = 90; radiation = 2)`).
///
/// Values are stored densely per schema position; attributes an event does
/// not carry are `None` and only satisfy don't-care predicates.
///
/// # Example
///
/// ```
/// use ens_types::{Schema, Domain, Event, Value};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let schema = Schema::builder()
///     .attribute("temperature", Domain::int(-30, 50))?
///     .attribute("humidity", Domain::int(0, 100))?
///     .build();
/// let e = Event::builder(&schema)
///     .value("temperature", 30)?
///     .value("humidity", 90)?
///     .build();
/// let t = schema.attr("temperature").unwrap();
/// assert_eq!(e.value(t), Some(&Value::Int(30)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    values: Vec<Option<Value>>,
}

impl Event {
    /// Starts building an event against `schema`.
    #[must_use]
    pub fn builder(schema: &Schema) -> EventBuilder<'_> {
        EventBuilder {
            schema,
            values: vec![None; schema.len()],
        }
    }

    /// Builds an event from dense per-attribute values.
    ///
    /// # Errors
    ///
    /// Returns a domain error if a value does not belong to its
    /// attribute's domain, and [`TypesError::UnknownAttribute`] if the
    /// number of values differs from the schema length.
    pub fn from_values(schema: &Schema, values: Vec<Option<Value>>) -> Result<Self, TypesError> {
        if values.len() != schema.len() {
            return Err(TypesError::UnknownAttribute(format!(
                "expected {} values, got {}",
                schema.len(),
                values.len()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = v {
                let attr = schema.attribute(AttrId::new(i as u32));
                attr.domain()
                    .index_of(v)
                    .map_err(|e| contextualise(e, attr.name()))?;
            }
        }
        Ok(Event { values })
    }

    /// The value carried for `attr`, if any.
    #[must_use]
    pub fn value(&self, attr: AttrId) -> Option<&Value> {
        self.values.get(attr.index()).and_then(Option::as_ref)
    }

    /// The dense per-attribute value slice (schema order, `None` for
    /// attributes the event does not carry).
    #[must_use]
    pub fn values(&self) -> &[Option<Value>] {
        &self.values
    }

    /// Number of attributes for which the event carries a value.
    #[must_use]
    pub fn specified_len(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Whether every schema attribute carries a value.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(Option::is_some)
    }

    /// Iterates over `(attribute id, value)` pairs that are present.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (AttrId::new(i as u32), v)))
    }

    /// Renders the event with attribute names from `schema`.
    #[must_use]
    pub fn display<'a>(&'a self, schema: &'a Schema) -> EventDisplay<'a> {
        EventDisplay {
            event: self,
            schema,
        }
    }
}

pub(crate) fn contextualise(e: TypesError, attribute: &str) -> TypesError {
    match e {
        TypesError::TypeMismatch {
            expected, found, ..
        } => TypesError::TypeMismatch {
            attribute: attribute.to_owned(),
            expected,
            found,
        },
        TypesError::OutOfDomain { value, .. } => TypesError::OutOfDomain {
            attribute: attribute.to_owned(),
            value,
        },
        other => other,
    }
}

/// Helper returned by [`Event::display`].
#[derive(Debug)]
pub struct EventDisplay<'a> {
    event: &'a Event,
    schema: &'a Schema,
}

impl fmt::Display for EventDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event(")?;
        let mut first = true;
        for (id, v) in self.event.iter() {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            write!(f, "{} = {}", self.schema.attribute(id).name(), v)?;
        }
        write!(f, ")")
    }
}

/// Incremental [`Event`] construction with schema validation.
#[derive(Debug)]
pub struct EventBuilder<'a> {
    schema: &'a Schema,
    values: Vec<Option<Value>>,
}

impl EventBuilder<'_> {
    /// Sets the value of the attribute called `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::UnknownAttribute`] for undeclared names and
    /// domain errors for ill-typed or out-of-range values.
    pub fn value(mut self, name: &str, value: impl Into<Value>) -> Result<Self, TypesError> {
        let id = self.schema.require(name)?;
        let value = value.into();
        let attr = self.schema.attribute(id);
        attr.domain()
            .index_of(&value)
            .map_err(|e| contextualise(e, attr.name()))?;
        self.values[id.index()] = Some(value);
        Ok(self)
    }

    /// Sets the value of the attribute with id `attr`.
    ///
    /// # Errors
    ///
    /// Returns domain errors for ill-typed or out-of-range values.
    pub fn value_by_id(
        mut self,
        attr: AttrId,
        value: impl Into<Value>,
    ) -> Result<Self, TypesError> {
        let value = value.into();
        let a = self.schema.attribute(attr);
        a.domain()
            .index_of(&value)
            .map_err(|e| contextualise(e, a.name()))?;
        self.values[attr.index()] = Some(value);
        Ok(self)
    }

    /// Finalises the event.
    #[must_use]
    pub fn build(self) -> Event {
        Event {
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("temperature", Domain::int(-30, 50))
            .unwrap()
            .attribute("humidity", Domain::int(0, 100))
            .unwrap()
            .attribute("radiation", Domain::int(1, 100))
            .unwrap()
            .build()
    }

    #[test]
    fn builder_validates_names_and_domains() {
        let s = schema();
        assert!(Event::builder(&s).value("pressure", 3).is_err());
        assert!(Event::builder(&s).value("humidity", 101).is_err());
        assert!(Event::builder(&s).value("humidity", "wet").is_err());
        let e = Event::builder(&s).value("humidity", 90).unwrap().build();
        assert_eq!(e.specified_len(), 1);
        assert!(!e.is_complete());
    }

    #[test]
    fn paper_event_round_trip() {
        let s = schema();
        let e = Event::builder(&s)
            .value("temperature", 30)
            .unwrap()
            .value("humidity", 90)
            .unwrap()
            .value("radiation", 2)
            .unwrap()
            .build();
        assert!(e.is_complete());
        let t = s.attr("temperature").unwrap();
        assert_eq!(e.value(t), Some(&Value::Int(30)));
        let text = e.display(&s).to_string();
        assert_eq!(
            text,
            "event(temperature = 30; humidity = 90; radiation = 2)"
        );
    }

    #[test]
    fn from_values_checks_arity_and_domains() {
        let s = schema();
        assert!(Event::from_values(&s, vec![None, None]).is_err());
        assert!(Event::from_values(&s, vec![Some(Value::Int(200)), None, None]).is_err());
        let e =
            Event::from_values(&s, vec![Some(Value::Int(0)), None, Some(Value::Int(1))]).unwrap();
        assert_eq!(e.specified_len(), 2);
    }

    #[test]
    fn error_messages_carry_attribute_name() {
        let s = schema();
        let err = Event::builder(&s).value("humidity", 999).unwrap_err();
        assert!(err.to_string().contains("humidity"), "{err}");
    }

    #[test]
    fn iter_skips_missing() {
        let s = schema();
        let e = Event::builder(&s).value("radiation", 7).unwrap().build();
        let pairs: Vec<(usize, &Value)> = e.iter().map(|(id, v)| (id.index(), v)).collect();
        assert_eq!(pairs, vec![(2, &Value::Int(7))]);
    }

    #[test]
    fn serde_round_trip() {
        let s = schema();
        let e = Event::builder(&s).value("temperature", -5).unwrap().build();
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
