use std::fmt;

use serde::{Deserialize, Serialize};

/// A half-open interval `[lo, hi)` of *domain indices*.
///
/// Every [`Domain`](crate::Domain) maps its points onto the index grid
/// `0..d`; predicates normalise to sets of these intervals. The half-open
/// convention makes adjacency and complement computations exact.
///
/// # Example
///
/// ```
/// use ens_types::IndexInterval;
/// let a = IndexInterval::new(2, 5);
/// assert_eq!(a.len(), 3);
/// assert!(a.contains(4));
/// assert!(!a.contains(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IndexInterval {
    lo: u64,
    hi: u64,
}

impl IndexInterval {
    /// Creates `[lo, hi)`. An interval with `hi <= lo` is empty and
    /// normalised to `[lo, lo)`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        IndexInterval { lo, hi: hi.max(lo) }
    }

    /// The single-point interval `[i, i+1)`.
    #[must_use]
    pub fn point(i: u64) -> Self {
        IndexInterval { lo: i, hi: i + 1 }
    }

    /// Inclusive lower endpoint.
    #[must_use]
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Exclusive upper endpoint.
    #[must_use]
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Number of indices covered.
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the interval covers no indices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    /// Whether `i` lies in `[lo, hi)`.
    #[must_use]
    pub fn contains(&self, i: u64) -> bool {
        self.lo <= i && i < self.hi
    }

    /// Whether `other` is fully contained in `self`.
    #[must_use]
    pub fn contains_interval(&self, other: &IndexInterval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Intersection of two intervals (possibly empty).
    #[must_use]
    pub fn intersect(&self, other: &IndexInterval) -> IndexInterval {
        IndexInterval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Whether the two intervals share at least one index.
    #[must_use]
    pub fn overlaps(&self, other: &IndexInterval) -> bool {
        !self.intersect(other).is_empty()
    }
}

impl fmt::Display for IndexInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// A normalised set of disjoint, sorted, non-adjacent [`IndexInterval`]s.
///
/// This is the canonical form predicates are lowered to: e.g. on the
/// domain `[0, 100]`, `humidity != 50` becomes `{[0,50), [51,101)}`.
///
/// # Example
///
/// ```
/// use ens_types::{IndexInterval, IntervalSet};
/// let s = IntervalSet::from_intervals(vec![
///     IndexInterval::new(5, 8),
///     IndexInterval::new(0, 5), // adjacent: merged
/// ]);
/// assert_eq!(s.iter().count(), 1);
/// assert_eq!(s.covered_len(), 8);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntervalSet {
    intervals: Vec<IndexInterval>,
}

impl IntervalSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Builds a normalised set from arbitrary intervals: empties dropped,
    /// the rest sorted and merged (overlapping *or adjacent* intervals
    /// coalesce).
    #[must_use]
    pub fn from_intervals(mut intervals: Vec<IndexInterval>) -> Self {
        intervals.retain(|iv| !iv.is_empty());
        intervals.sort();
        let mut merged: Vec<IndexInterval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match merged.last_mut() {
                Some(last) if iv.lo() <= last.hi() => {
                    *last = IndexInterval::new(last.lo(), last.hi().max(iv.hi()));
                }
                _ => merged.push(iv),
            }
        }
        IntervalSet { intervals: merged }
    }

    /// The full domain `[0, d)`.
    #[must_use]
    pub fn full(d: u64) -> Self {
        IntervalSet::from_intervals(vec![IndexInterval::new(0, d)])
    }

    /// Whether the set covers no indices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total number of indices covered.
    #[must_use]
    pub fn covered_len(&self) -> u64 {
        self.intervals.iter().map(IndexInterval::len).sum()
    }

    /// Whether index `i` is covered.
    #[must_use]
    pub fn contains(&self, i: u64) -> bool {
        // Find the last interval starting at or before `i`.
        match self.intervals.partition_point(|iv| iv.lo() <= i) {
            0 => false,
            k => self.intervals[k - 1].contains(i),
        }
    }

    /// Whether every index of `other` is also covered by `self`
    /// (set inclusion `other ⊆ self`), by a single merge walk over the
    /// two sorted interval lists.
    ///
    /// This is the per-attribute core of the profile covering relation
    /// ([`covers`](crate::covers)): predicate `b` implies predicate `a`
    /// exactly when `b`'s lowered index set is contained in `a`'s.
    #[must_use]
    pub fn contains_set(&self, other: &IntervalSet) -> bool {
        let mut i = 0;
        'outer: for o in &other.intervals {
            while i < self.intervals.len() {
                let s = self.intervals[i];
                if s.hi() <= o.lo() {
                    // Entirely left of `o` — and of every later `o` too.
                    i += 1;
                    continue;
                }
                if s.lo() <= o.lo() && o.hi() <= s.hi() {
                    // `o` contained; the same `s` may contain later `o`s.
                    continue 'outer;
                }
                return false;
            }
            return false;
        }
        true
    }

    /// Iterates over the disjoint intervals in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &IndexInterval> {
        self.intervals.iter()
    }

    /// Borrow the sorted intervals as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[IndexInterval] {
        &self.intervals
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = self.intervals.clone();
        all.extend_from_slice(&other.intervals);
        IntervalSet::from_intervals(all)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = self.intervals[i];
            let b = other.intervals[j];
            let iv = a.intersect(&b);
            if !iv.is_empty() {
                out.push(iv);
            }
            if a.hi() <= b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { intervals: out }
    }

    /// Complement with respect to the full domain `[0, d)`.
    ///
    /// Intervals extending beyond `d` are clipped.
    #[must_use]
    pub fn complement(&self, d: u64) -> IntervalSet {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for iv in &self.intervals {
            let lo = iv.lo().min(d);
            if cursor < lo {
                out.push(IndexInterval::new(cursor, lo));
            }
            cursor = cursor.max(iv.hi());
        }
        if cursor < d {
            out.push(IndexInterval::new(cursor, d));
        }
        IntervalSet { intervals: out }
    }

    /// All interval endpoints (both `lo` and `hi`), used by the subrange
    /// decomposition in `ens-filter`.
    #[must_use]
    pub fn endpoints(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.intervals.len() * 2);
        for iv in &self.intervals {
            out.push(iv.lo());
            out.push(iv.hi());
        }
        out
    }
}

impl FromIterator<IndexInterval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = IndexInterval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter.into_iter().collect())
    }
}

impl Extend<IndexInterval> for IntervalSet {
    fn extend<I: IntoIterator<Item = IndexInterval>>(&mut self, iter: I) {
        let mut all = std::mem::take(&mut self.intervals);
        all.extend(iter);
        *self = IntervalSet::from_intervals(all);
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, iv) in self.intervals.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_interval_normalised() {
        let iv = IndexInterval::new(5, 3);
        assert!(iv.is_empty());
        assert_eq!(iv.len(), 0);
    }

    #[test]
    fn point_interval() {
        let iv = IndexInterval::point(7);
        assert_eq!(iv.len(), 1);
        assert!(iv.contains(7));
        assert!(!iv.contains(8));
    }

    #[test]
    fn interval_intersection_and_overlap() {
        let a = IndexInterval::new(0, 10);
        let b = IndexInterval::new(5, 15);
        assert_eq!(a.intersect(&b), IndexInterval::new(5, 10));
        assert!(a.overlaps(&b));
        let c = IndexInterval::new(10, 12);
        assert!(!a.overlaps(&c), "half-open: [0,10) and [10,12) disjoint");
    }

    #[test]
    fn contains_interval_handles_empty() {
        let a = IndexInterval::new(2, 4);
        assert!(a.contains_interval(&IndexInterval::new(9, 9)));
        assert!(a.contains_interval(&IndexInterval::new(2, 4)));
        assert!(!a.contains_interval(&IndexInterval::new(2, 5)));
    }

    #[test]
    fn set_merges_overlapping_and_adjacent() {
        let s = IntervalSet::from_intervals(vec![
            IndexInterval::new(0, 3),
            IndexInterval::new(2, 5),
            IndexInterval::new(5, 6),
            IndexInterval::new(8, 9),
        ]);
        assert_eq!(
            s.as_slice(),
            &[IndexInterval::new(0, 6), IndexInterval::new(8, 9)]
        );
        assert_eq!(s.covered_len(), 7);
    }

    #[test]
    fn set_contains_uses_binary_search() {
        let s = IntervalSet::from_intervals(vec![
            IndexInterval::new(0, 2),
            IndexInterval::new(10, 20),
            IndexInterval::new(30, 31),
        ]);
        assert!(s.contains(0));
        assert!(s.contains(19));
        assert!(s.contains(30));
        assert!(!s.contains(2));
        assert!(!s.contains(25));
        assert!(!s.contains(31));
    }

    #[test]
    fn set_union_intersect_complement() {
        let a =
            IntervalSet::from_intervals(vec![IndexInterval::new(0, 5), IndexInterval::new(10, 15)]);
        let b = IntervalSet::from_intervals(vec![IndexInterval::new(3, 12)]);
        let u = a.union(&b);
        assert_eq!(u.as_slice(), &[IndexInterval::new(0, 15)]);
        let i = a.intersect(&b);
        assert_eq!(
            i.as_slice(),
            &[IndexInterval::new(3, 5), IndexInterval::new(10, 12)]
        );
        let c = a.complement(20);
        assert_eq!(
            c.as_slice(),
            &[IndexInterval::new(5, 10), IndexInterval::new(15, 20)]
        );
        // Complement twice returns the original (within [0, 20)).
        assert_eq!(c.complement(20), a);
    }

    #[test]
    fn complement_of_empty_is_full() {
        let e = IntervalSet::new();
        assert_eq!(e.complement(4).as_slice(), &[IndexInterval::new(0, 4)]);
        assert_eq!(IntervalSet::full(4).complement(4), IntervalSet::new());
    }

    #[test]
    fn complement_clips_beyond_domain() {
        let s = IntervalSet::from_intervals(vec![IndexInterval::new(2, 100)]);
        assert_eq!(s.complement(5).as_slice(), &[IndexInterval::new(0, 2)]);
    }

    #[test]
    fn contains_set_agrees_with_pointwise_inclusion() {
        let cases = [
            (vec![(0, 10)], vec![(2, 5)], true),
            (vec![(0, 10)], vec![(2, 5), (7, 10)], true),
            (vec![(0, 10), (20, 30)], vec![(5, 12)], false),
            (vec![(0, 10), (20, 30)], vec![(2, 4), (25, 26)], true),
            (vec![(0, 10), (20, 30)], vec![(2, 4), (15, 16)], false),
            (vec![(5, 6)], vec![(5, 6)], true),
            (vec![(5, 6)], vec![], true),
            (vec![], vec![(0, 1)], false),
            (vec![], vec![], true),
        ];
        for (a, b, want) in cases {
            let a = IntervalSet::from_intervals(
                a.iter().map(|&(l, h)| IndexInterval::new(l, h)).collect(),
            );
            let b = IntervalSet::from_intervals(
                b.iter().map(|&(l, h)| IndexInterval::new(l, h)).collect(),
            );
            assert_eq!(a.contains_set(&b), want, "{a} ⊇ {b}");
            // Cross-check against a pointwise scan.
            let scan = (0..40).all(|i| !b.contains(i) || a.contains(i));
            assert_eq!(scan, want, "pointwise {a} ⊇ {b}");
        }
    }

    #[test]
    fn collect_from_iterator() {
        let s: IntervalSet = (0..3)
            .map(|k| IndexInterval::new(k * 4, k * 4 + 2))
            .collect();
        assert_eq!(s.iter().count(), 3);
        let mut t = IntervalSet::new();
        t.extend([IndexInterval::new(0, 1), IndexInterval::new(1, 2)]);
        assert_eq!(t.as_slice(), &[IndexInterval::new(0, 2)]);
    }

    #[test]
    fn display_formats() {
        let s =
            IntervalSet::from_intervals(vec![IndexInterval::new(0, 2), IndexInterval::new(5, 6)]);
        assert_eq!(s.to_string(), "{[0, 2), [5, 6)}");
    }
}
