//! Core data model for the `ens` event-notification workspace.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace, following the model of Hinze & Bittner, *Efficient
//! Distribution-Based Event Filtering* (ICDCSW 2002):
//!
//! * an **event** is a collection of `(attribute, value)` pairs
//!   ([`Event`]), e.g. `event(temperature = 30; humidity = 90)`;
//! * a **profile** (subscription) is a conjunction of predicates over the
//!   same attributes ([`Profile`]), e.g.
//!   `profile(temperature >= 35; humidity = 90)`;
//! * attributes and their typed domains are declared once in a
//!   [`Schema`]; every domain is a finite, totally ordered grid of points
//!   so that the distribution-based cost model of the paper (domain sizes
//!   `d`, zero-subdomain sizes `d0`) is exact integer arithmetic.
//!
//! Predicates normalise to sets of half-open **index intervals** over the
//! domain grid ([`IntervalSet`]), which is the representation the profile
//! tree in `ens-filter` consumes.
//!
//! # Example
//!
//! ```
//! use ens_types::{Schema, Domain, Profile, Event, Predicate, Value};
//!
//! # fn main() -> Result<(), ens_types::TypesError> {
//! let schema = Schema::builder()
//!     .attribute("temperature", Domain::int(-30, 50))?
//!     .attribute("humidity", Domain::int(0, 100))?
//!     .build();
//!
//! let profile = Profile::builder(&schema)
//!     .predicate("temperature", Predicate::ge(35))?
//!     .predicate("humidity", Predicate::eq(90))?
//!     .build(0.into());
//!
//! let event = Event::builder(&schema)
//!     .value("temperature", 40)?
//!     .value("humidity", 90)?
//!     .build();
//!
//! assert!(profile.matches(&schema, &event)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribute;
mod covering;
mod domain;
mod error;
mod event;
mod indexed;
mod interval;
pub mod parse;
mod predicate;
mod profile;
mod value;

pub use attribute::{AttrId, Attribute, Schema, SchemaBuilder};
pub use covering::{covers, profile_signature, CoverOutcome, CoverSet, Residual};
pub use domain::{Categories, Domain};
pub use error::TypesError;
pub use event::{Event, EventBuilder};
pub use indexed::{IndexedBatch, IndexedEvent};
pub use interval::{IndexInterval, IntervalSet};
pub use predicate::{Operator, Predicate};
pub use profile::{Profile, ProfileBuilder, ProfileId, ProfileSet};
pub use value::{FiniteF64, Value};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, TypesError>;
