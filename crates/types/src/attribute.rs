use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Domain, TypesError};

/// Index of an attribute within a [`Schema`] (the paper's `j ∈ [1, n]`,
/// zero-based here).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct AttrId(u32);

impl AttrId {
    /// Creates an attribute id from a raw index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        AttrId(index)
    }

    /// The raw index, usable to address dense per-attribute arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for AttrId {
    fn from(x: u32) -> Self {
        AttrId(x)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A named attribute together with its value [`Domain`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    domain: Domain,
}

impl Attribute {
    /// Creates an attribute.
    #[must_use]
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Attribute {
            name: name.into(),
            domain,
        }
    }

    /// The attribute's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain.
    #[must_use]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.domain)
    }
}

/// The fixed set of attributes `A` over which events and profiles are
/// defined (paper §3: "for a given application, we consider a firm set A
/// of attributes").
///
/// # Example
///
/// ```
/// use ens_types::{Schema, Domain};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let schema = Schema::builder()
///     .attribute("temperature", Domain::int(-30, 50))?
///     .attribute("humidity", Domain::int(0, 100))?
///     .attribute("radiation", Domain::int(1, 100))?
///     .build();
/// assert_eq!(schema.len(), 3);
/// assert_eq!(schema.attr("humidity").unwrap().index(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize)]
#[serde(transparent)]
pub struct Schema {
    attributes: Vec<Attribute>,
    #[serde(skip)]
    by_name: HashMap<String, AttrId>,
    /// Dense per-attribute domains (derived cache): event resolution
    /// iterates this without striding over attribute names.
    #[serde(skip)]
    domains: Vec<Domain>,
}

impl<'de> Deserialize<'de> for Schema {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        let attributes = Vec::<Attribute>::deserialize(deserializer)?;
        Schema::from_attributes(attributes).map_err(serde::de::Error::custom)
    }
}

impl Schema {
    /// Starts building a schema.
    #[must_use]
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Builds a schema straight from attributes.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::DuplicateAttribute`] on repeated names.
    pub fn from_attributes<I>(attributes: I) -> Result<Self, TypesError>
    where
        I: IntoIterator<Item = Attribute>,
    {
        let mut b = Schema::builder();
        for a in attributes {
            b = b.push(a)?;
        }
        Ok(b.build())
    }

    /// Number of attributes `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema declares no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Looks up an attribute id by name.
    #[must_use]
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an attribute id by name, with a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::UnknownAttribute`] if `name` is not declared.
    pub fn require(&self, name: &str) -> Result<AttrId, TypesError> {
        self.attr(name)
            .ok_or_else(|| TypesError::UnknownAttribute(name.to_owned()))
    }

    /// The attribute stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this schema.
    #[must_use]
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.index()]
    }

    /// The attribute stored under `id`, or `None` if out of range.
    #[must_use]
    pub fn get(&self, id: AttrId) -> Option<&Attribute> {
        self.attributes.get(id.index())
    }

    /// Iterates over `(id, attribute)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u32), a))
    }

    /// All attribute ids in declaration order (the "natural" attribute
    /// order of the paper).
    pub fn ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len()).map(|i| AttrId(i as u32))
    }

    /// Dense per-attribute domain slice (declaration order).
    #[must_use]
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    fn rebuild_index(&mut self) {
        self.by_name = self
            .attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name().to_owned(), AttrId(i as u32)))
            .collect();
        self.domains = self.attributes.iter().map(|a| a.domain().clone()).collect();
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.attributes == other.attributes
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema(")?;
        for (k, a) in self.attributes.iter().enumerate() {
            if k > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Incremental [`Schema`] construction.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attributes: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Appends an attribute by name and domain.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::DuplicateAttribute`] if the name repeats.
    pub fn attribute(self, name: impl Into<String>, domain: Domain) -> Result<Self, TypesError> {
        self.push(Attribute::new(name, domain))
    }

    /// Appends a pre-built attribute.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::DuplicateAttribute`] if the name repeats.
    pub fn push(mut self, attribute: Attribute) -> Result<Self, TypesError> {
        if self.attributes.iter().any(|a| a.name() == attribute.name()) {
            return Err(TypesError::DuplicateAttribute(attribute.name().to_owned()));
        }
        self.attributes.push(attribute);
        Ok(self)
    }

    /// Finalises the schema.
    #[must_use]
    pub fn build(self) -> Schema {
        let mut s = Schema {
            attributes: self.attributes,
            by_name: HashMap::new(),
            domains: Vec::new(),
        };
        s.rebuild_index();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Schema {
        Schema::builder()
            .attribute("temperature", Domain::int(-30, 50))
            .unwrap()
            .attribute("humidity", Domain::int(0, 100))
            .unwrap()
            .build()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = toy();
        let h = s.attr("humidity").unwrap();
        assert_eq!(h.index(), 1);
        assert_eq!(s.attribute(h).name(), "humidity");
        assert!(s.attr("pressure").is_none());
        assert!(matches!(
            s.require("pressure"),
            Err(TypesError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::builder()
            .attribute("x", Domain::Bool)
            .unwrap()
            .attribute("x", Domain::Bool);
        assert!(matches!(r, Err(TypesError::DuplicateAttribute(_))));
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let s = toy();
        let names: Vec<&str> = s.iter().map(|(_, a)| a.name()).collect();
        assert_eq!(names, vec!["temperature", "humidity"]);
        let ids: Vec<usize> = s.ids().map(AttrId::index).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn serde_round_trip_rebuilds_name_index() {
        let s = toy();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.attr("humidity").unwrap().index(), 1);
    }

    #[test]
    fn deserialization_rejects_duplicates() {
        let json = r#"[
            {"name": "x", "domain": "Bool"},
            {"name": "x", "domain": "Bool"}
        ]"#;
        let r: Result<Schema, _> = serde_json::from_str(json);
        assert!(r.is_err());
    }

    #[test]
    fn display_renders_all_attributes() {
        let s = toy();
        let text = s.to_string();
        assert!(text.contains("temperature"));
        assert!(text.contains("humidity"));
    }
}
