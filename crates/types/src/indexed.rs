use crate::{AttrId, Event, Schema, TypesError, Value};

/// An [`Event`] pre-resolved into per-attribute domain indices.
///
/// Matching an event against a profile tree or DFSA repeatedly needs the
/// *grid index* of each attribute value, not the value itself. Resolving
/// `Domain::index_of` once per event — instead of once per tree node —
/// removes redundant work from the hot matching loop, and the resolved
/// form is a dense `Vec<Option<u64>>` the matchers can read with plain
/// array indexing.
///
/// The buffer is reusable: [`IndexedEvent::resolve_into`] overwrites an
/// existing instance without allocating (after the first resolution at
/// full schema width), which is what the allocation-free matching fast
/// path in `ens-filter` builds on.
///
/// # Example
///
/// ```
/// use ens_types::{Schema, Domain, Event, IndexedEvent, AttrId};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let schema = Schema::builder()
///     .attribute("temperature", Domain::int(-30, 50))?
///     .attribute("humidity", Domain::int(0, 100))?
///     .build();
/// let e = Event::builder(&schema).value("temperature", 30)?.build();
/// let indexed = IndexedEvent::resolve(&schema, &e)?;
/// assert_eq!(indexed.get(AttrId::new(0)), Some(60)); // -30 -> 0, 30 -> 60
/// assert_eq!(indexed.get(AttrId::new(1)), None); // humidity missing
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexedEvent {
    /// Dense per-attribute indices; [`IndexedEvent::MISSING`] encodes an
    /// absent attribute (sentinel instead of `Option` so matchers read
    /// one machine word per attribute).
    indices: Vec<u64>,
}

impl IndexedEvent {
    /// Sentinel stored for attributes the event does not carry. No real
    /// domain index can reach it (domains are far smaller than `u64`).
    pub const MISSING: u64 = u64::MAX;

    /// Creates an empty buffer, ready for [`IndexedEvent::resolve_into`].
    #[must_use]
    pub fn new() -> Self {
        IndexedEvent {
            indices: Vec::new(),
        }
    }

    /// Resolves `event` against `schema` into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Returns the same domain errors as [`crate::Domain::index_of`] for
    /// ill-typed or out-of-range values (e.g. an event built against a
    /// different schema).
    pub fn resolve(schema: &Schema, event: &Event) -> Result<Self, TypesError> {
        let mut out = IndexedEvent::new();
        out.resolve_into(schema, event)?;
        Ok(out)
    }

    /// Resolves `event` against `schema`, reusing this buffer.
    ///
    /// After the buffer has grown to the schema's width once, subsequent
    /// calls perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns the same domain errors as [`crate::Domain::index_of`]; on
    /// error the buffer contents are unspecified (but safe to reuse).
    pub fn resolve_into(&mut self, schema: &Schema, event: &Event) -> Result<(), TypesError> {
        self.indices.clear();
        resolve_append(schema, event, &mut self.indices)
    }

    /// Overwrites this buffer with a raw sentinel-encoded index slice
    /// (e.g. one row of an [`IndexedBatch`]). No heap allocation once
    /// the buffer has grown to `raw.len()`; no validation is performed.
    pub fn copy_from_raw(&mut self, raw: &[u64]) {
        self.indices.clear();
        self.indices.extend_from_slice(raw);
    }

    /// Wraps pre-computed indices (one per schema attribute, `None` for
    /// missing values). No validation is performed; out-of-domain indices
    /// simply never match any edge.
    #[must_use]
    pub fn from_indices(indices: Vec<Option<u64>>) -> Self {
        IndexedEvent {
            indices: indices
                .into_iter()
                .map(|o| o.unwrap_or(Self::MISSING))
                .collect(),
        }
    }

    /// Reconstructs the [`Event`] this indexed form encodes under
    /// `schema` — the inverse of [`IndexedEvent::resolve`], used when
    /// indexed rows cross a trust boundary (e.g. arrive from a
    /// federation peer) and must become a first-class event again.
    ///
    /// Exact for integer, boolean and categorical domains; float
    /// values come back snapped to their grid point (which is the
    /// identity for values that were resolved from this schema in the
    /// first place).
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::UnknownAttribute`] if the index width
    /// differs from the schema width, and [`TypesError::OutOfDomain`]
    /// if any index is outside its attribute's domain — both of which
    /// only arise for rows that were never produced by resolving
    /// against `schema` (a corrupt or foreign wire row).
    pub fn to_event(&self, schema: &Schema) -> Result<Event, TypesError> {
        if self.indices.len() != schema.len() {
            return Err(TypesError::UnknownAttribute(format!(
                "indexed row has {} slots, schema has {}",
                self.indices.len(),
                schema.len()
            )));
        }
        let mut values: Vec<Option<Value>> = Vec::with_capacity(schema.len());
        for (i, (&idx, domain)) in self.indices.iter().zip(schema.domains()).enumerate() {
            if idx == Self::MISSING {
                values.push(None);
            } else if idx < domain.size() {
                values.push(Some(domain.value_at(idx)));
            } else {
                let a = schema.attribute(AttrId::new(i as u32));
                return Err(TypesError::OutOfDomain {
                    attribute: a.name().to_string(),
                    value: format!("index {idx}"),
                });
            }
        }
        Event::from_values(schema, values)
    }

    /// The resolved grid index for `attr`, or `None` if the event does
    /// not carry that attribute (or `attr` is out of range).
    #[must_use]
    pub fn get(&self, attr: AttrId) -> Option<u64> {
        self.indices
            .get(attr.index())
            .copied()
            .filter(|i| *i != Self::MISSING)
    }

    /// The dense per-attribute index slice (schema order), with
    /// [`IndexedEvent::MISSING`] for absent attributes — the raw form
    /// the hot matching loops consume.
    #[must_use]
    pub fn raw(&self) -> &[u64] {
        &self.indices
    }

    /// Number of attribute slots (the schema width it was resolved for).
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether no attribute slots are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Appends one event's resolved sentinel-encoded indices (exactly
/// `schema.len()` entries) to `out`. Shared by [`IndexedEvent`] and
/// [`IndexedBatch`]; on error nothing is appended.
fn resolve_append(schema: &Schema, event: &Event, out: &mut Vec<u64>) -> Result<(), TypesError> {
    let start = out.len();
    out.reserve(schema.len());
    for (i, (domain, value)) in schema.domains().iter().zip(event.values()).enumerate() {
        match value {
            None => out.push(IndexedEvent::MISSING),
            Some(v) => match domain.try_index_of(v) {
                Some(idx) => out.push(idx),
                None => {
                    // Cold path: rebuild the descriptive error with
                    // the attribute's name.
                    let a = schema.attribute(crate::AttrId::new(i as u32));
                    let e = domain.index_of(v).expect_err("try_index_of returned None");
                    out.truncate(start);
                    return Err(crate::event::contextualise(e, a.name()));
                }
            },
        }
    }
    // Events narrower than the schema leave the tail unspecified.
    out.resize(start + schema.len(), IndexedEvent::MISSING);
    Ok(())
}

/// A block of [`Event`]s pre-resolved into one contiguous row-major
/// index arena — the input of the batch matching fast path.
///
/// Each row holds one event's dense per-attribute domain indices
/// (schema order, [`IndexedEvent::MISSING`] for absent attributes),
/// exactly like [`IndexedEvent::raw`]. Storing the whole block in one
/// `Vec<u64>` keeps resolution out of the per-event matching loop *and*
/// lets a block matcher stream rows with predictable addresses — the
/// layout `ens-filter`'s interleaved DFSA traversal prefetches against.
///
/// The buffer is reusable: [`IndexedBatch::resolve_into`] overwrites an
/// existing instance and performs no heap allocation once it has grown
/// to the batch's footprint.
///
/// # Example
///
/// ```
/// use ens_types::{Domain, Event, IndexedBatch, Schema};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let schema = Schema::builder().attribute("x", Domain::int(0, 9))?.build();
/// let events = [
///     Event::builder(&schema).value("x", 3)?.build(),
///     Event::builder(&schema).build(),
/// ];
/// let mut batch = IndexedBatch::new();
/// batch.resolve_into(&schema, events.iter())?;
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.row(0), &[3]);
/// assert_eq!(batch.row(1), &[ens_types::IndexedEvent::MISSING]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexedBatch {
    /// Row width (= schema width the batch was resolved for).
    width: usize,
    /// `len * width` sentinel-encoded indices, row-major.
    indices: Vec<u64>,
}

impl IndexedBatch {
    /// Creates an empty batch, ready for [`IndexedBatch::resolve_into`].
    #[must_use]
    pub fn new() -> Self {
        IndexedBatch::default()
    }

    /// Resolves `events` against `schema`, reusing this buffer. After
    /// the buffer has grown to the batch footprint once, subsequent
    /// calls of the same (or smaller) shape perform no heap allocation.
    ///
    /// Resolution runs **column-major** — one pass over the batch per
    /// attribute — so the per-value domain dispatch is hoisted out of
    /// the inner loop (the iterator is cloned once per attribute, which
    /// is free for slice iterators); integer domains additionally take
    /// a monomorphic fast path. This is what makes batched resolution
    /// cheaper than per-event [`IndexedEvent::resolve_into`] calls.
    ///
    /// # Errors
    ///
    /// Returns the same domain errors as [`IndexedEvent::resolve_into`]
    /// for ill-typed values; on error the batch is left cleared.
    pub fn resolve_into<'a, I>(&mut self, schema: &Schema, events: I) -> Result<(), TypesError>
    where
        I: IntoIterator<Item = &'a Event>,
        I::IntoIter: Clone,
    {
        let iter = events.into_iter();
        let width = schema.len().max(1);
        self.width = width;
        self.indices.clear();
        let n = iter.clone().count();
        // Missing-by-default: events narrower than the schema (and the
        // untouched tail of a width-padded empty schema) stay MISSING.
        self.indices.resize(n * width, IndexedEvent::MISSING);
        for (a, domain) in schema.domains().iter().enumerate() {
            let result = match domain {
                crate::Domain::Int { lo, hi } => {
                    // Monomorphic integer column: two compares + one
                    // subtraction per value, no enum dispatch.
                    let (lo, hi) = (*lo, *hi);
                    self.column(iter.clone(), a, |v| match v {
                        Value::Int(x) if lo <= *x && *x <= hi => Some((x - lo) as u64),
                        _ => None,
                    })
                }
                _ => self.column(iter.clone(), a, |v| domain.try_index_of(v)),
            };
            if let Err(v) = result {
                self.indices.clear();
                let attr = schema.attribute(crate::AttrId::new(a as u32));
                let e = domain
                    .index_of(&v)
                    .expect_err("column fast path rejected the value");
                return Err(crate::event::contextualise(e, attr.name()));
            }
        }
        Ok(())
    }

    /// Resolves one attribute column; returns the offending value on
    /// the first failure (cold path — the caller builds the error).
    fn column<'a, I>(
        &mut self,
        events: I,
        a: usize,
        mut index_of: impl FnMut(&Value) -> Option<u64>,
    ) -> Result<(), Value>
    where
        I: Iterator<Item = &'a Event>,
    {
        let width = self.width;
        for (i, e) in events.enumerate() {
            if let Some(Some(v)) = e.values().get(a) {
                match index_of(v) {
                    Some(idx) => self.indices[i * width + a] = idx,
                    None => return Err(v.clone()),
                }
            }
        }
        Ok(())
    }

    /// Clears the batch and fixes the row width for subsequent
    /// [`IndexedBatch::push_raw`] calls, applying the same `max(1)`
    /// padding as [`IndexedBatch::resolve_into`] so an empty schema
    /// still yields addressable rows. The arena capacity is retained.
    pub fn reset(&mut self, width: usize) {
        self.width = width.max(1);
        self.indices.clear();
    }

    /// Appends one raw sentinel-encoded row (the same form as
    /// [`IndexedEvent::raw`]) — the ingress path for rows that arrive
    /// already resolved, e.g. from a federation peer. No validation is
    /// performed; out-of-domain indices simply never match.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the width set by
    /// [`IndexedBatch::reset`] (or the last resolution).
    pub fn push_raw(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.width, "raw row width mismatch");
        self.indices.extend_from_slice(row);
    }

    /// Number of events in the batch (0 before the first resolution).
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len().checked_div(self.width).unwrap_or(0)
    }

    /// Whether the batch holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Row width: the schema width the batch was resolved for.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Event `i`'s raw sentinel-encoded index row (schema order) — the
    /// same form as [`IndexedEvent::raw`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.indices[i * self.width..(i + 1) * self.width]
    }

    /// The whole row-major index arena (`len() * width()` entries) —
    /// what block matchers stream instead of per-row slices, so one
    /// bounds check covers an arbitrary `(event, attribute)` access.
    #[must_use]
    pub fn raw(&self) -> &[u64] {
        &self.indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("temperature", Domain::int(-30, 50))
            .unwrap()
            .attribute("sky", Domain::categorical(["clear", "cloudy"]).unwrap())
            .unwrap()
            .build()
    }

    #[test]
    fn resolves_all_kinds_and_missing() {
        let s = schema();
        let e = Event::builder(&s)
            .value("temperature", -30)
            .unwrap()
            .value("sky", "cloudy")
            .unwrap()
            .build();
        let ix = IndexedEvent::resolve(&s, &e).unwrap();
        assert_eq!(ix.raw(), &[0, 1]);
        let partial = Event::builder(&s).value("sky", "clear").unwrap().build();
        let ix = IndexedEvent::resolve(&s, &partial).unwrap();
        assert_eq!(ix.get(AttrId::new(0)), None);
        assert_eq!(ix.get(AttrId::new(1)), Some(0));
        assert_eq!(ix.len(), 2);
        assert!(!ix.is_empty());
    }

    #[test]
    fn resolve_into_reuses_buffer() {
        let s = schema();
        let mut ix = IndexedEvent::new();
        let e = Event::builder(&s).value("temperature", 0).unwrap().build();
        ix.resolve_into(&s, &e).unwrap();
        assert_eq!(ix.get(AttrId::new(0)), Some(30));
        let cap = ix.indices.capacity();
        let e = Event::builder(&s).value("sky", "clear").unwrap().build();
        ix.resolve_into(&s, &e).unwrap();
        assert_eq!(ix.raw(), &[IndexedEvent::MISSING, 0]);
        assert_eq!(ix.indices.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn foreign_schema_values_error_with_attribute_name() {
        let s = schema();
        let wide = Schema::builder()
            .attribute("temperature", Domain::int(-1000, 1000))
            .unwrap()
            .attribute("sky", Domain::categorical(["clear", "cloudy"]).unwrap())
            .unwrap()
            .build();
        let e = Event::builder(&wide)
            .value("temperature", 500)
            .unwrap()
            .build();
        let err = IndexedEvent::resolve(&s, &e).unwrap_err();
        assert!(err.to_string().contains("temperature"), "{err}");
    }

    #[test]
    fn to_event_round_trips_resolution() {
        let s = schema();
        let cases = [
            Event::builder(&s)
                .value("temperature", -30)
                .unwrap()
                .value("sky", "cloudy")
                .unwrap()
                .build(),
            Event::builder(&s).value("sky", "clear").unwrap().build(),
            Event::builder(&s).build(),
        ];
        for e in cases {
            let ix = IndexedEvent::resolve(&s, &e).unwrap();
            assert_eq!(ix.to_event(&s).unwrap(), e);
        }
    }

    #[test]
    fn to_event_rejects_foreign_rows() {
        let s = schema();
        let mut ix = IndexedEvent::new();
        ix.copy_from_raw(&[0]);
        let err = ix.to_event(&s).unwrap_err();
        assert!(matches!(err, TypesError::UnknownAttribute(_)), "{err}");
        // temperature domain has 81 points; index 81 is one past the end.
        ix.copy_from_raw(&[81, IndexedEvent::MISSING]);
        let err = ix.to_event(&s).unwrap_err();
        match err {
            TypesError::OutOfDomain { attribute, .. } => assert_eq!(attribute, "temperature"),
            other => panic!("expected OutOfDomain, got {other:?}"),
        }
    }

    #[test]
    fn batch_resolves_rows_and_reuses_buffer() {
        let s = schema();
        let events = [
            Event::builder(&s)
                .value("temperature", -30)
                .unwrap()
                .build(),
            Event::builder(&s).value("sky", "cloudy").unwrap().build(),
        ];
        let mut batch = IndexedBatch::new();
        batch.resolve_into(&s, events.iter()).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.width(), 2);
        assert_eq!(batch.row(0), &[0, IndexedEvent::MISSING]);
        assert_eq!(batch.row(1), &[IndexedEvent::MISSING, 1]);
        // Rows agree with the single-event resolution.
        for (i, e) in events.iter().enumerate() {
            let single = IndexedEvent::resolve(&s, e).unwrap();
            assert_eq!(batch.row(i), single.raw());
        }
        let cap = batch.indices.capacity();
        batch.resolve_into(&s, events.iter()).unwrap();
        assert_eq!(batch.indices.capacity(), cap, "no reallocation on reuse");
        assert!(!batch.is_empty());
    }

    #[test]
    fn batch_error_leaves_batch_cleared() {
        let s = schema();
        let wide = Schema::builder()
            .attribute("temperature", Domain::int(-1000, 1000))
            .unwrap()
            .build();
        let bad = Event::builder(&wide)
            .value("temperature", 500)
            .unwrap()
            .build();
        let good = Event::builder(&s).value("temperature", 0).unwrap().build();
        let mut batch = IndexedBatch::new();
        let err = batch.resolve_into(&s, [&good, &bad]).unwrap_err();
        assert!(err.to_string().contains("temperature"), "{err}");
        assert!(batch.is_empty());
    }

    #[test]
    fn unresolved_batch_is_empty_not_panicking() {
        let b = IndexedBatch::new();
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert!(b.raw().is_empty());
    }

    #[test]
    fn copy_from_raw_overwrites() {
        let mut ix = IndexedEvent::from_indices(vec![Some(1), Some(2), Some(3)]);
        ix.copy_from_raw(&[7, IndexedEvent::MISSING]);
        assert_eq!(ix.raw(), &[7, IndexedEvent::MISSING]);
        assert_eq!(ix.get(AttrId::new(1)), None);
    }

    #[test]
    fn from_indices_round_trips() {
        let ix = IndexedEvent::from_indices(vec![Some(3), None]);
        assert_eq!(ix.get(AttrId::new(0)), Some(3));
        assert_eq!(ix.get(AttrId::new(1)), None);
        assert_eq!(ix.get(AttrId::new(9)), None, "out of range is None");
    }
}
