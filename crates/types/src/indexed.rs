use crate::{AttrId, Event, Schema, TypesError};

/// An [`Event`] pre-resolved into per-attribute domain indices.
///
/// Matching an event against a profile tree or DFSA repeatedly needs the
/// *grid index* of each attribute value, not the value itself. Resolving
/// `Domain::index_of` once per event — instead of once per tree node —
/// removes redundant work from the hot matching loop, and the resolved
/// form is a dense `Vec<Option<u64>>` the matchers can read with plain
/// array indexing.
///
/// The buffer is reusable: [`IndexedEvent::resolve_into`] overwrites an
/// existing instance without allocating (after the first resolution at
/// full schema width), which is what the allocation-free matching fast
/// path in `ens-filter` builds on.
///
/// # Example
///
/// ```
/// use ens_types::{Schema, Domain, Event, IndexedEvent, AttrId};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let schema = Schema::builder()
///     .attribute("temperature", Domain::int(-30, 50))?
///     .attribute("humidity", Domain::int(0, 100))?
///     .build();
/// let e = Event::builder(&schema).value("temperature", 30)?.build();
/// let indexed = IndexedEvent::resolve(&schema, &e)?;
/// assert_eq!(indexed.get(AttrId::new(0)), Some(60)); // -30 -> 0, 30 -> 60
/// assert_eq!(indexed.get(AttrId::new(1)), None); // humidity missing
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexedEvent {
    /// Dense per-attribute indices; [`IndexedEvent::MISSING`] encodes an
    /// absent attribute (sentinel instead of `Option` so matchers read
    /// one machine word per attribute).
    indices: Vec<u64>,
}

impl IndexedEvent {
    /// Sentinel stored for attributes the event does not carry. No real
    /// domain index can reach it (domains are far smaller than `u64`).
    pub const MISSING: u64 = u64::MAX;

    /// Creates an empty buffer, ready for [`IndexedEvent::resolve_into`].
    #[must_use]
    pub fn new() -> Self {
        IndexedEvent {
            indices: Vec::new(),
        }
    }

    /// Resolves `event` against `schema` into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Returns the same domain errors as [`crate::Domain::index_of`] for
    /// ill-typed or out-of-range values (e.g. an event built against a
    /// different schema).
    pub fn resolve(schema: &Schema, event: &Event) -> Result<Self, TypesError> {
        let mut out = IndexedEvent::new();
        out.resolve_into(schema, event)?;
        Ok(out)
    }

    /// Resolves `event` against `schema`, reusing this buffer.
    ///
    /// After the buffer has grown to the schema's width once, subsequent
    /// calls perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns the same domain errors as [`crate::Domain::index_of`]; on
    /// error the buffer contents are unspecified (but safe to reuse).
    pub fn resolve_into(&mut self, schema: &Schema, event: &Event) -> Result<(), TypesError> {
        self.indices.clear();
        self.indices.reserve(schema.len());
        for (i, (domain, value)) in schema.domains().iter().zip(event.values()).enumerate() {
            match value {
                None => self.indices.push(Self::MISSING),
                Some(v) => match domain.try_index_of(v) {
                    Some(idx) => self.indices.push(idx),
                    None => {
                        // Cold path: rebuild the descriptive error with
                        // the attribute's name.
                        let a = schema.attribute(crate::AttrId::new(i as u32));
                        let e = domain.index_of(v).expect_err("try_index_of returned None");
                        return Err(crate::event::contextualise(e, a.name()));
                    }
                },
            }
        }
        // Events narrower than the schema leave the tail unspecified.
        self.indices.resize(schema.len(), Self::MISSING);
        Ok(())
    }

    /// Wraps pre-computed indices (one per schema attribute, `None` for
    /// missing values). No validation is performed; out-of-domain indices
    /// simply never match any edge.
    #[must_use]
    pub fn from_indices(indices: Vec<Option<u64>>) -> Self {
        IndexedEvent {
            indices: indices
                .into_iter()
                .map(|o| o.unwrap_or(Self::MISSING))
                .collect(),
        }
    }

    /// The resolved grid index for `attr`, or `None` if the event does
    /// not carry that attribute (or `attr` is out of range).
    #[must_use]
    pub fn get(&self, attr: AttrId) -> Option<u64> {
        self.indices
            .get(attr.index())
            .copied()
            .filter(|i| *i != Self::MISSING)
    }

    /// The dense per-attribute index slice (schema order), with
    /// [`IndexedEvent::MISSING`] for absent attributes — the raw form
    /// the hot matching loops consume.
    #[must_use]
    pub fn raw(&self) -> &[u64] {
        &self.indices
    }

    /// Number of attribute slots (the schema width it was resolved for).
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether no attribute slots are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("temperature", Domain::int(-30, 50))
            .unwrap()
            .attribute("sky", Domain::categorical(["clear", "cloudy"]).unwrap())
            .unwrap()
            .build()
    }

    #[test]
    fn resolves_all_kinds_and_missing() {
        let s = schema();
        let e = Event::builder(&s)
            .value("temperature", -30)
            .unwrap()
            .value("sky", "cloudy")
            .unwrap()
            .build();
        let ix = IndexedEvent::resolve(&s, &e).unwrap();
        assert_eq!(ix.raw(), &[0, 1]);
        let partial = Event::builder(&s).value("sky", "clear").unwrap().build();
        let ix = IndexedEvent::resolve(&s, &partial).unwrap();
        assert_eq!(ix.get(AttrId::new(0)), None);
        assert_eq!(ix.get(AttrId::new(1)), Some(0));
        assert_eq!(ix.len(), 2);
        assert!(!ix.is_empty());
    }

    #[test]
    fn resolve_into_reuses_buffer() {
        let s = schema();
        let mut ix = IndexedEvent::new();
        let e = Event::builder(&s).value("temperature", 0).unwrap().build();
        ix.resolve_into(&s, &e).unwrap();
        assert_eq!(ix.get(AttrId::new(0)), Some(30));
        let cap = ix.indices.capacity();
        let e = Event::builder(&s).value("sky", "clear").unwrap().build();
        ix.resolve_into(&s, &e).unwrap();
        assert_eq!(ix.raw(), &[IndexedEvent::MISSING, 0]);
        assert_eq!(ix.indices.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn foreign_schema_values_error_with_attribute_name() {
        let s = schema();
        let wide = Schema::builder()
            .attribute("temperature", Domain::int(-1000, 1000))
            .unwrap()
            .attribute("sky", Domain::categorical(["clear", "cloudy"]).unwrap())
            .unwrap()
            .build();
        let e = Event::builder(&wide)
            .value("temperature", 500)
            .unwrap()
            .build();
        let err = IndexedEvent::resolve(&s, &e).unwrap_err();
        assert!(err.to_string().contains("temperature"), "{err}");
    }

    #[test]
    fn from_indices_round_trips() {
        let ix = IndexedEvent::from_indices(vec![Some(3), None]);
        assert_eq!(ix.get(AttrId::new(0)), Some(3));
        assert_eq!(ix.get(AttrId::new(1)), None);
        assert_eq!(ix.get(AttrId::new(9)), None, "out of range is None");
    }
}
