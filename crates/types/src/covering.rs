//! Profile containment (covering) analysis.
//!
//! In the classic ENS literature (SIENA's covering relations, REBECA's
//! subscription merging) a profile `a` **covers** `b` when every event
//! matching `b` also matches `a` — e.g. `AAPL > 100` covers
//! `AAPL > 150`. A production service with millions of subscribers has
//! huge populations of near-duplicate and mutually-covering profiles,
//! and exploiting containment is what makes compiled broker state
//! sublinear in subscribers: only the **minimal antichain** of covering
//! representatives needs to be compiled; covered profiles are delivered
//! through a cheap expansion map at match time.
//!
//! Two pieces live here:
//!
//! * [`covers`] — the exact containment relation on profiles, decided
//!   attribute-wise on the lowered [`IntervalSet`]s: `a` covers `b` iff
//!   for every attribute either `a` is don't-care, or `b` is specified
//!   with `intervals(b) ⊆ intervals(a)` (a missing event attribute
//!   satisfies only don't-care, so a specified `a` over a don't-care
//!   `b` never covers). An unsatisfiable `b` is vacuously covered.
//! * [`CoverSet`] — antichain maintenance with an **attribute-keyed
//!   signature index**: exact duplicates resolve through one hash of
//!   the full lowered signature, and single-attribute weakenings (the
//!   REBECA "perfect merge" class — identical on all attributes but
//!   one, weaker on that one) resolve through one hash per attribute of
//!   the signature with that attribute wildcarded. Both are O(1)
//!   expected per probe — no O(n) pairwise scan — at the price of not
//!   detecting covers that weaken several attributes at once; missing a
//!   cover is always safe (the profile is simply compiled as its own
//!   representative).
//!
//! Every covered profile carries a [`Residual`]: the attributes on
//! which it is *strictly stronger* than its representative, lowered to
//! index sets. At delivery time a match of the representative expands
//! to the covered profile only if the event also passes the residual —
//! so expansion is exact, and exact duplicates (empty residual) are
//! delivered for free.

use std::collections::HashMap;

use crate::{AttrId, IntervalSet, Profile, Schema, TypesError};

/// Returns whether `a` covers `b`: every event matching `b` matches `a`.
///
/// Decided attribute-wise on the lowered interval sets (see the module
/// docs for the exact rule, including the `(*)`/missing-attribute and
/// unsatisfiability cases). This is the reference relation the
/// [`CoverSet`] detection classes are tested against.
///
/// # Errors
///
/// Propagates predicate lowering errors.
pub fn covers(schema: &Schema, a: &Profile, b: &Profile) -> Result<bool, TypesError> {
    let sa = lower(schema, a)?;
    let sb = lower(schema, b)?;
    // An unsatisfiable `b` matches no event: vacuously covered.
    if sb.iter().flatten().any(IntervalSet::is_empty) {
        return Ok(true);
    }
    for (x, y) in sa.iter().zip(sb.iter()) {
        match (x, y) {
            (None, _) => {}
            // An event missing this attribute matches `b` but not `a`.
            (Some(_), None) => return Ok(false),
            (Some(x), Some(y)) => {
                if !x.contains_set(y) {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// The canonical byte signature of `profile` under `schema`: the lowered
/// per-attribute interval sets serialised in schema order. Two profiles
/// share a signature iff they lower to the same index sets — i.e. they
/// match exactly the same events — which makes the signature a stable
/// identity key for forwarded-interest ledgers (a re-learned profile
/// maps to the same key regardless of predicate spelling).
///
/// # Errors
///
/// Propagates predicate lowering errors.
pub fn profile_signature(schema: &Schema, profile: &Profile) -> Result<Vec<u8>, TypesError> {
    Ok(signature(&lower(schema, profile)?))
}

/// Lowers a profile to its per-attribute index sets in schema order
/// (`None` = don't-care).
fn lower(schema: &Schema, p: &Profile) -> Result<Vec<Option<IntervalSet>>, TypesError> {
    let mut out = Vec::with_capacity(schema.len());
    for (id, attr) in schema.iter() {
        let pred = p.predicate(id);
        out.push(if pred.is_dont_care() {
            None
        } else {
            Some(pred.to_intervals(attr.domain())?)
        });
    }
    Ok(out)
}

/// One delivery-time residual check of a covered profile: the event
/// must carry `attr` with an index inside `allowed` (the covered
/// profile's own lowered predicate on that attribute).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Residual {
    /// The attribute the covered profile is strictly stronger on.
    pub attr: AttrId,
    /// The covered profile's lowered index set on that attribute.
    pub allowed: IntervalSet,
}

/// Outcome of probing a [`CoverSet`] with a new profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverOutcome {
    /// Not covered by any known representative: compile it.
    Rep,
    /// Covered by the representative at slot `rep`; deliver through the
    /// expansion map, gated by `residual`.
    Covered {
        /// Slot of the covering representative.
        rep: u32,
        /// Residual checks (empty for an exact duplicate).
        residual: Vec<Residual>,
    },
}

/// Marker bytes structuring the canonical signature of a lowered
/// profile: per attribute either `SIG_DONT_CARE`, or `SIG_SPECIFIED`
/// followed by the interval endpoints; `SIG_ANY` wildcards one
/// attribute in the reduced signatures of the attribute-keyed index.
const SIG_DONT_CARE: u8 = 0;
const SIG_SPECIFIED: u8 = 1;
const SIG_ANY: u8 = 2;

/// The minimal-antichain tracker: which profiles of a population are
/// covering representatives, which are covered by whom, and the
/// residual each covered profile carries.
///
/// Slots are caller-assigned dense `u32` positions (base indices in the
/// broker, [`crate::ProfileSet`] ids in a bulk compile). Construction is
/// either a bulk [`CoverSet::build_bulk`] pass (profiles sorted
/// general-first so representatives are seen before the profiles they
/// cover) or [`CoverSet::from_parts`] (crash recovery: representatives
/// and the expansion map are replayed verbatim — signatures are
/// re-hashed but containment is never re-derived). Between compactions
/// the set is probed read-only via [`CoverSet::probe`] /
/// [`CoverSet::dominated_reps`].
///
/// # Example
///
/// ```
/// use ens_types::{CoverOutcome, CoverSet, Domain, Predicate, ProfileSet, Schema};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let schema = Schema::builder()
///     .attribute("price", Domain::int(0, 1000))?
///     .build();
/// let mut ps = ProfileSet::new(&schema);
/// ps.insert_with(|b| b.predicate("price", Predicate::gt(100)))?;
/// ps.insert_with(|b| b.predicate("price", Predicate::gt(150)))?; // covered
/// ps.insert_with(|b| b.predicate("price", Predicate::gt(100)))?; // duplicate
/// let cover = CoverSet::build_bulk(
///     &schema,
///     ps.iter().map(|p| (p.id().index() as u32, p)),
/// )?;
/// assert_eq!(cover.rep_count(), 1);
/// assert_eq!(cover.covered_count(), 2);
/// assert_eq!(cover.cover_of(2).unwrap().0, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoverSet {
    schema: Schema,
    /// Full canonical signature → representative slot (exact
    /// duplicates).
    full: HashMap<Vec<u8>, u32>,
    /// `(attr, signature with that attribute wildcarded)` → candidate
    /// representative slots (single-attribute weakenings).
    by_attr: HashMap<(u32, Vec<u8>), Vec<u32>>,
    /// Representative slot → its lowered per-attribute sets.
    reps: HashMap<u32, Vec<Option<IntervalSet>>>,
    /// Representative slots, ascending — position in this list is the
    /// dense compiled id a covering-pruned compilation assigns.
    rep_sorted: Vec<u32>,
    /// Covered slot → (representative slot, residual).
    children: HashMap<u32, (u32, Vec<Residual>)>,
}

impl CoverSet {
    /// Creates an empty cover set over `schema`.
    #[must_use]
    pub fn new(schema: &Schema) -> Self {
        CoverSet {
            schema: schema.clone(),
            full: HashMap::new(),
            by_attr: HashMap::new(),
            reps: HashMap::new(),
            rep_sorted: Vec::new(),
            children: HashMap::new(),
        }
    }

    /// Builds the antichain over a whole population in one containment
    /// pass: profiles are lowered once, sorted general-first (fewer
    /// specified attributes, then wider index sets), and inserted in
    /// that order so every detectable cover finds its representative
    /// already indexed.
    ///
    /// # Errors
    ///
    /// Propagates predicate lowering errors.
    pub fn build_bulk<'a, I>(schema: &Schema, profiles: I) -> Result<Self, TypesError>
    where
        I: IntoIterator<Item = (u32, &'a Profile)>,
    {
        let mut lowered: Vec<(u32, Vec<Option<IntervalSet>>)> = Vec::new();
        for (slot, p) in profiles {
            lowered.push((slot, lower(schema, p)?));
        }
        // General-first: ascending count of specified attributes, then
        // descending total covered length (wider = weaker), then slot
        // for determinism. If `a` covers `b` then `a` specifies a
        // subset of `b`'s attributes with supersets per attribute, so
        // `a` sorts at or before `b`; ties are exact duplicates, where
        // either order yields a valid antichain.
        lowered.sort_by(|(sa, xa), (sb, xb)| {
            let ka = xa.iter().flatten().count();
            let kb = xb.iter().flatten().count();
            let la: u64 = xa.iter().flatten().map(IntervalSet::covered_len).sum();
            let lb: u64 = xb.iter().flatten().map(IntervalSet::covered_len).sum();
            ka.cmp(&kb).then(lb.cmp(&la)).then(sa.cmp(sb))
        });
        let mut out = CoverSet::new(schema);
        for (slot, sets) in lowered {
            out.insert_lowered(slot, sets);
        }
        out.rep_sorted.sort_unstable();
        Ok(out)
    }

    /// Rebuilds a cover set from persisted parts — the representative
    /// profiles and the expansion map — without re-deriving any
    /// containment: representatives are re-indexed (pure hashing) and
    /// the `(child, rep, residual)` triples are replayed verbatim. This
    /// is the crash-recovery path.
    ///
    /// # Errors
    ///
    /// Propagates predicate lowering errors; fails if a child references
    /// an unknown representative.
    pub fn from_parts<'a, R, C>(schema: &Schema, reps: R, children: C) -> Result<Self, TypesError>
    where
        R: IntoIterator<Item = (u32, &'a Profile)>,
        C: IntoIterator<Item = (u32, u32, Vec<Residual>)>,
    {
        let mut out = CoverSet::new(schema);
        for (slot, p) in reps {
            let sets = lower(schema, p)?;
            out.index_rep(slot, sets);
        }
        out.rep_sorted.sort_unstable();
        for (child, rep, residual) in children {
            if !out.reps.contains_key(&rep) {
                return Err(TypesError::UnknownAttribute(format!(
                    "cover child {child} references unknown representative {rep}"
                )));
            }
            out.children.insert(child, (rep, residual));
        }
        Ok(out)
    }

    /// Probes whether `profile` is covered by a known representative,
    /// without mutating the set — the incremental (overlay) subscribe
    /// path. Detection classes: exact duplicate (one hash of the full
    /// signature) and single-attribute weakening (one hash per
    /// specified attribute); O(1) expected per probe.
    ///
    /// # Errors
    ///
    /// Propagates predicate lowering errors.
    pub fn probe(&self, profile: &Profile) -> Result<CoverOutcome, TypesError> {
        let sets = lower(&self.schema, profile)?;
        Ok(match self.find_cover(&sets) {
            Some((rep, residual)) => CoverOutcome::Covered { rep, residual },
            None => CoverOutcome::Rep,
        })
    }

    /// Representative slots that `profile` covers (the reverse
    /// direction: the new profile is *weaker* than existing entries),
    /// through the same attribute-keyed index. Used to detect antichain
    /// inversions — a new subscription dominating compiled
    /// representatives — so the caller can schedule a compaction that
    /// restores minimality.
    ///
    /// # Errors
    ///
    /// Propagates predicate lowering errors.
    pub fn dominated_reps(&self, profile: &Profile) -> Result<Vec<u32>, TypesError> {
        let sets = lower(&self.schema, profile)?;
        let mut out = Vec::new();
        if let Some(&rep) = self.full.get(&signature(&sets)) {
            out.push(rep);
        }
        for j in 0..sets.len() {
            let Some(cands) = self.by_attr.get(&(j as u32, signature_without(&sets, j))) else {
                continue;
            };
            for &cand in cands {
                // `cand` agrees with `profile` on every attribute but
                // `j`; `profile` covers it iff `profile` is don't-care
                // or a superset there.
                let covered = match (&sets[j], &self.reps[&cand][j]) {
                    (None, Some(_)) => true,
                    (Some(p), Some(r)) => p != r && p.contains_set(r),
                    _ => false,
                };
                if covered {
                    out.push(cand);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Number of covering representatives.
    #[must_use]
    pub fn rep_count(&self) -> usize {
        self.rep_sorted.len()
    }

    /// Number of covered (non-compiled) profiles.
    #[must_use]
    pub fn covered_count(&self) -> usize {
        self.children.len()
    }

    /// Representative slots in ascending order. Position in this slice
    /// is the dense compiled id a covering-pruned compilation assigns.
    #[must_use]
    pub fn rep_slots(&self) -> &[u32] {
        &self.rep_sorted
    }

    /// The dense compiled id of representative `slot`, if it is one.
    #[must_use]
    pub fn compiled_index_of(&self, slot: u32) -> Option<u32> {
        let k = self.rep_sorted.partition_point(|&s| s < slot);
        (self.rep_sorted.get(k) == Some(&slot)).then_some(k as u32)
    }

    /// The representative covering `slot` and its residual, if `slot`
    /// is covered.
    #[must_use]
    pub fn cover_of(&self, slot: u32) -> Option<(u32, &[Residual])> {
        self.children
            .get(&slot)
            .map(|(rep, residual)| (*rep, residual.as_slice()))
    }

    /// Covered slots with their `(representative, residual)` entries,
    /// ascending by covered slot — the expansion map in serialisable
    /// form.
    #[must_use]
    pub fn children_sorted(&self) -> Vec<(u32, u32, &[Residual])> {
        let mut out: Vec<(u32, u32, &[Residual])> = self
            .children
            .iter()
            .map(|(child, (rep, residual))| (*child, *rep, residual.as_slice()))
            .collect();
        out.sort_unstable_by_key(|&(child, _, _)| child);
        out
    }

    fn insert_lowered(&mut self, slot: u32, sets: Vec<Option<IntervalSet>>) {
        if let Some((rep, residual)) = self.find_cover(&sets) {
            self.children.insert(slot, (rep, residual));
        } else {
            self.index_rep(slot, sets);
        }
    }

    fn find_cover(&self, sets: &[Option<IntervalSet>]) -> Option<(u32, Vec<Residual>)> {
        if let Some(&rep) = self.full.get(&signature(sets)) {
            return Some((rep, Vec::new()));
        }
        for (j, set) in sets.iter().enumerate() {
            // A representative strictly weaker on a don't-care
            // attribute would have to be don't-care too — and then the
            // full signatures would have matched already.
            let Some(set) = set else { continue };
            let Some(cands) = self.by_attr.get(&(j as u32, signature_without(sets, j))) else {
                continue;
            };
            for &cand in cands {
                let covers_j = match &self.reps[&cand][j] {
                    None => true,
                    Some(r) => r.contains_set(set),
                };
                if covers_j {
                    let residual = vec![Residual {
                        attr: AttrId::new(j as u32),
                        allowed: set.clone(),
                    }];
                    return Some((cand, residual));
                }
            }
        }
        None
    }

    fn index_rep(&mut self, slot: u32, sets: Vec<Option<IntervalSet>>) {
        self.full.entry(signature(&sets)).or_insert(slot);
        for j in 0..sets.len() {
            self.by_attr
                .entry((j as u32, signature_without(&sets, j)))
                .or_default()
                .push(slot);
        }
        self.rep_sorted.push(slot);
        self.reps.insert(slot, sets);
    }
}

/// Canonical byte signature of a lowered profile.
fn signature(sets: &[Option<IntervalSet>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sets.len() * 8);
    for set in sets {
        push_section(&mut out, set.as_ref());
    }
    out
}

/// The signature with attribute `j` wildcarded.
fn signature_without(sets: &[Option<IntervalSet>], j: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(sets.len() * 8);
    for (k, set) in sets.iter().enumerate() {
        if k == j {
            out.push(SIG_ANY);
        } else {
            push_section(&mut out, set.as_ref());
        }
    }
    out
}

fn push_section(out: &mut Vec<u8>, set: Option<&IntervalSet>) {
    match set {
        None => out.push(SIG_DONT_CARE),
        Some(set) => {
            out.push(SIG_SPECIFIED);
            let ivs = set.as_slice();
            out.extend_from_slice(&(ivs.len() as u32).to_le_bytes());
            for iv in ivs {
                out.extend_from_slice(&iv.lo().to_le_bytes());
                out.extend_from_slice(&iv.hi().to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Event, Predicate, ProfileId, ProfileSet, Value};

    fn schema() -> Schema {
        Schema::builder()
            .attribute("x", Domain::int(0, 9))
            .unwrap()
            .attribute("y", Domain::int(0, 4))
            .unwrap()
            .attribute("kind", Domain::categorical(["a", "b", "c"]).unwrap())
            .unwrap()
            .build()
    }

    fn profile(schema: &Schema, preds: Vec<Predicate>) -> Profile {
        Profile::from_predicates(schema, ProfileId::new(0), preds).unwrap()
    }

    /// Brute-force implication oracle: every event (including partial
    /// ones) matching `b` matches `a`.
    fn implies(schema: &Schema, a: &Profile, b: &Profile) -> bool {
        let sizes: Vec<u64> = schema.iter().map(|(_, at)| at.domain().size()).collect();
        let mut stack = vec![Vec::<Option<u64>>::new()];
        while let Some(prefix) = stack.pop() {
            if prefix.len() < sizes.len() {
                let j = prefix.len();
                for choice in std::iter::once(None).chain((0..sizes[j]).map(Some)) {
                    let mut next = prefix.clone();
                    next.push(choice);
                    stack.push(next);
                }
                continue;
            }
            let mut b_ev = Event::builder(schema);
            for (j, choice) in prefix.iter().enumerate() {
                if let Some(i) = choice {
                    let id = AttrId::new(j as u32);
                    let v: Value = schema.attribute(id).domain().value_at(*i);
                    b_ev = b_ev.value_by_id(id, v).unwrap();
                }
            }
            let e = b_ev.build();
            if b.matches(schema, &e).unwrap() && !a.matches(schema, &e).unwrap() {
                return false;
            }
        }
        true
    }

    #[test]
    fn covers_basic_directions() {
        let s = schema();
        let wide = profile(
            &s,
            vec![Predicate::ge(2), Predicate::DontCare, Predicate::DontCare],
        );
        let narrow = profile(
            &s,
            vec![Predicate::ge(5), Predicate::DontCare, Predicate::DontCare],
        );
        assert!(covers(&s, &wide, &narrow).unwrap());
        assert!(!covers(&s, &narrow, &wide).unwrap());
        assert!(covers(&s, &wide, &wide).unwrap());
        // Specified over don't-care never covers: the missing-attribute
        // event matches the don't-care profile only.
        let dc = profile(
            &s,
            vec![
                Predicate::DontCare,
                Predicate::DontCare,
                Predicate::DontCare,
            ],
        );
        assert!(covers(&s, &dc, &wide).unwrap());
        assert!(!covers(&s, &wide, &dc).unwrap());
    }

    #[test]
    fn covers_extra_attribute_is_stronger() {
        let s = schema();
        let a = profile(
            &s,
            vec![Predicate::ge(2), Predicate::DontCare, Predicate::DontCare],
        );
        let b = profile(
            &s,
            vec![Predicate::ge(2), Predicate::le(3), Predicate::DontCare],
        );
        assert!(covers(&s, &a, &b).unwrap());
        assert!(!covers(&s, &b, &a).unwrap());
    }

    #[test]
    fn covers_unsatisfiable_is_vacuous() {
        let s = schema();
        let unsat = profile(
            &s,
            vec![
                Predicate::In(vec![]),
                Predicate::DontCare,
                Predicate::DontCare,
            ],
        );
        let any = profile(
            &s,
            vec![Predicate::eq(3), Predicate::DontCare, Predicate::DontCare],
        );
        assert!(covers(&s, &any, &unsat).unwrap());
        assert!(!covers(&s, &unsat, &any).unwrap());
    }

    #[test]
    fn covers_agrees_with_brute_force_oracle() {
        // Deterministic sweep over a predicate menu covering don't-care,
        // points, ranges, sets and complements on all three domain
        // kinds; the oracle enumerates every (partial) event.
        let s = schema();
        let xs = [
            Predicate::DontCare,
            Predicate::eq(3),
            Predicate::ge(2),
            Predicate::ge(5),
            Predicate::between(2, 7),
            Predicate::in_set([1i64, 3, 5]),
            Predicate::ne(3),
        ];
        let ys = [Predicate::DontCare, Predicate::le(2), Predicate::eq(1)];
        let ks = [
            Predicate::DontCare,
            Predicate::eq("a"),
            Predicate::in_set(["a", "b"]),
        ];
        let mut profiles = Vec::new();
        for x in &xs {
            for y in &ys {
                for k in &ks {
                    profiles.push(profile(&s, vec![x.clone(), y.clone(), k.clone()]));
                }
            }
        }
        let mut checked = 0;
        for a in &profiles {
            for b in &profiles {
                let got = covers(&s, a, b).unwrap();
                let want = implies(&s, a, b);
                assert_eq!(got, want, "covers({}, {})", a.display(&s), b.display(&s));
                checked += 1;
            }
        }
        assert!(checked >= 63 * 63);
    }

    #[test]
    fn bulk_build_finds_duplicates_and_single_attr_weakenings() {
        let s = schema();
        let mut ps = ProfileSet::new(&s);
        // 0: the general representative.
        ps.insert_with(|b| b.predicate("x", Predicate::ge(2)))
            .unwrap();
        // 1: exact duplicate.
        ps.insert_with(|b| b.predicate("x", Predicate::ge(2)))
            .unwrap();
        // 2: strictly narrower on x.
        ps.insert_with(|b| b.predicate("x", Predicate::ge(7)))
            .unwrap();
        // 3: extra attribute specified.
        ps.insert_with(|b| {
            b.predicate("x", Predicate::ge(2))?
                .predicate("y", Predicate::le(1))
        })
        .unwrap();
        // 4: unrelated representative.
        ps.insert_with(|b| b.predicate("kind", Predicate::eq("b")))
            .unwrap();
        let cover =
            CoverSet::build_bulk(&s, ps.iter().map(|p| (p.id().index() as u32, p))).unwrap();
        assert_eq!(cover.rep_slots(), &[0, 4]);
        assert_eq!(cover.covered_count(), 3);
        let (rep, residual) = cover.cover_of(1).unwrap();
        assert_eq!((rep, residual.len()), (0, 0), "duplicate: free delivery");
        let (rep, residual) = cover.cover_of(2).unwrap();
        assert_eq!(rep, 0);
        assert_eq!(residual.len(), 1);
        assert_eq!(residual[0].attr, AttrId::new(0));
        let (rep, residual) = cover.cover_of(3).unwrap();
        assert_eq!(rep, 0);
        assert_eq!(residual[0].attr, AttrId::new(1));
        assert_eq!(cover.compiled_index_of(0), Some(0));
        assert_eq!(cover.compiled_index_of(4), Some(1));
        assert_eq!(cover.compiled_index_of(2), None);
    }

    #[test]
    fn bulk_build_is_order_independent_for_detected_classes() {
        let s = schema();
        let wide = profile(
            &s,
            vec![Predicate::ge(2), Predicate::DontCare, Predicate::DontCare],
        );
        let narrow = profile(
            &s,
            vec![Predicate::ge(7), Predicate::DontCare, Predicate::DontCare],
        );
        // Narrow first: the general-first sort must still make `wide`
        // the representative.
        let cover = CoverSet::build_bulk(&s, [(5u32, &narrow), (9u32, &wide)]).unwrap();
        assert_eq!(cover.rep_slots(), &[9]);
        assert_eq!(cover.cover_of(5).unwrap().0, 9);
    }

    #[test]
    fn probe_and_dominated_reps() {
        let s = schema();
        let mut ps = ProfileSet::new(&s);
        ps.insert_with(|b| b.predicate("x", Predicate::ge(5)))
            .unwrap();
        let cover =
            CoverSet::build_bulk(&s, ps.iter().map(|p| (p.id().index() as u32, p))).unwrap();
        // Covered probe.
        let narrower = profile(
            &s,
            vec![Predicate::ge(8), Predicate::DontCare, Predicate::DontCare],
        );
        match cover.probe(&narrower).unwrap() {
            CoverOutcome::Covered { rep, residual } => {
                assert_eq!(rep, 0);
                assert_eq!(residual.len(), 1);
            }
            CoverOutcome::Rep => panic!("expected cover"),
        }
        // Duplicate probe.
        let dup = profile(
            &s,
            vec![Predicate::ge(5), Predicate::DontCare, Predicate::DontCare],
        );
        assert_eq!(
            cover.probe(&dup).unwrap(),
            CoverOutcome::Covered {
                rep: 0,
                residual: vec![]
            }
        );
        // Uncovered probe leaves the set unchanged.
        let other = profile(
            &s,
            vec![Predicate::DontCare, Predicate::eq(1), Predicate::DontCare],
        );
        assert_eq!(cover.probe(&other).unwrap(), CoverOutcome::Rep);
        // Reverse direction: a weaker profile dominates the rep.
        let weaker = profile(
            &s,
            vec![Predicate::ge(2), Predicate::DontCare, Predicate::DontCare],
        );
        assert_eq!(cover.dominated_reps(&weaker).unwrap(), vec![0]);
        assert!(cover.dominated_reps(&narrower).unwrap().is_empty());
        // Full don't-care dominates via the wildcard bucket.
        let dc = profile(
            &s,
            vec![
                Predicate::DontCare,
                Predicate::DontCare,
                Predicate::DontCare,
            ],
        );
        assert_eq!(cover.dominated_reps(&dc).unwrap(), vec![0]);
    }

    #[test]
    fn from_parts_replays_expansion_map_verbatim() {
        let s = schema();
        let rep = profile(
            &s,
            vec![Predicate::ge(2), Predicate::DontCare, Predicate::DontCare],
        );
        let residual = vec![Residual {
            attr: AttrId::new(0),
            allowed: rep
                .predicate(AttrId::new(0))
                .to_intervals(s.attribute(AttrId::new(0)).domain())
                .unwrap(),
        }];
        let cover =
            CoverSet::from_parts(&s, [(3u32, &rep)], [(7u32, 3u32, residual.clone())]).unwrap();
        assert_eq!(cover.rep_slots(), &[3]);
        assert_eq!(cover.cover_of(7), Some((3, residual.as_slice())));
        // Probing still works against the replayed index.
        let dup = rep.clone();
        assert!(matches!(
            cover.probe(&dup).unwrap(),
            CoverOutcome::Covered { rep: 3, .. }
        ));
        // Unknown representative is rejected.
        assert!(CoverSet::from_parts(&s, [(3u32, &rep)], [(7u32, 9u32, vec![])]).is_err());
    }

    #[test]
    fn covered_probes_match_reference_covers() {
        // Whatever the detection classes find must agree with the exact
        // relation — a detected cover is always a true cover.
        let s = schema();
        let mut ps = ProfileSet::new(&s);
        ps.insert_with(|b| b.predicate("x", Predicate::between(2, 8)))
            .unwrap();
        ps.insert_with(|b| {
            b.predicate("x", Predicate::between(2, 8))?
                .predicate("kind", Predicate::in_set(["a", "b"]))
        })
        .unwrap();
        ps.insert_with(|b| b.predicate("y", Predicate::le(3)))
            .unwrap();
        let cover =
            CoverSet::build_bulk(&s, ps.iter().map(|p| (p.id().index() as u32, p))).unwrap();
        for (child, rep, _) in cover.children_sorted() {
            let child_p = ps.get(ProfileId::new(child)).unwrap();
            let rep_p = ps.get(ProfileId::new(rep)).unwrap();
            assert!(covers(&s, rep_p, child_p).unwrap());
        }
    }
}
