use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AttrId, Event, Predicate, Schema, TypesError};

/// Identifier of a [`Profile`] within a [`ProfileSet`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ProfileId(u32);

impl ProfileId {
    /// Creates a profile id from a raw index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        ProfileId(index)
    }

    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ProfileId {
    fn from(x: u32) -> Self {
        ProfileId(x)
    }
}

impl fmt::Display for ProfileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A subscription profile: a conjunction of per-attribute predicates
/// (paper §3, e.g. `profile(temperature >= 35; humidity = 90)`).
///
/// Attributes without an explicit predicate are don't-care (`*`).
///
/// # Example
///
/// ```
/// use ens_types::{Schema, Domain, Profile, Predicate, Event};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let schema = Schema::builder()
///     .attribute("temperature", Domain::int(-30, 50))?
///     .attribute("humidity", Domain::int(0, 100))?
///     .build();
/// let p = Profile::builder(&schema)
///     .predicate("temperature", Predicate::ge(35))?
///     .build(0.into());
/// let warm = Event::builder(&schema).value("temperature", 40)?.build();
/// assert!(p.matches(&schema, &warm)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    id: ProfileId,
    predicates: Vec<Predicate>,
}

impl Profile {
    /// Starts building a profile against `schema`.
    #[must_use]
    pub fn builder(schema: &Schema) -> ProfileBuilder<'_> {
        ProfileBuilder {
            schema,
            predicates: vec![Predicate::DontCare; schema.len()],
        }
    }

    /// Builds a profile from dense per-attribute predicates.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::UnknownAttribute`] if the number of
    /// predicates differs from the schema length.
    pub fn from_predicates(
        schema: &Schema,
        id: ProfileId,
        predicates: Vec<Predicate>,
    ) -> Result<Self, TypesError> {
        if predicates.len() != schema.len() {
            return Err(TypesError::UnknownAttribute(format!(
                "expected {} predicates, got {}",
                schema.len(),
                predicates.len()
            )));
        }
        Ok(Profile { id, predicates })
    }

    /// The profile's identifier.
    #[must_use]
    pub fn id(&self) -> ProfileId {
        self.id
    }

    /// The predicate on attribute `attr` (don't-care if never set).
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range for the schema this profile was
    /// built against.
    #[must_use]
    pub fn predicate(&self, attr: AttrId) -> &Predicate {
        &self.predicates[attr.index()]
    }

    /// All predicates in schema order.
    #[must_use]
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of attributes with a non-don't-care predicate.
    #[must_use]
    pub fn specified_len(&self) -> usize {
        self.predicates.iter().filter(|p| !p.is_dont_care()).count()
    }

    /// Evaluates the profile against an event by direct predicate
    /// evaluation (the reference semantics the tree matcher is tested
    /// against). A missing event attribute satisfies only don't-care.
    ///
    /// # Errors
    ///
    /// Propagates domain errors for ill-typed event values.
    pub fn matches(&self, schema: &Schema, event: &Event) -> Result<bool, TypesError> {
        for (i, pred) in self.predicates.iter().enumerate() {
            if pred.is_dont_care() {
                continue;
            }
            let id = AttrId::new(i as u32);
            match event.value(id) {
                None => return Ok(false),
                Some(v) => {
                    if !pred.matches(schema.attribute(id).domain(), v)? {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Renders the profile with attribute names from `schema`.
    #[must_use]
    pub fn display<'a>(&'a self, schema: &'a Schema) -> ProfileDisplay<'a> {
        ProfileDisplay {
            profile: self,
            schema,
        }
    }
}

/// Helper returned by [`Profile::display`].
#[derive(Debug)]
pub struct ProfileDisplay<'a> {
    profile: &'a Profile,
    schema: &'a Schema,
}

impl fmt::Display for ProfileDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile(")?;
        let mut first = true;
        for (i, pred) in self.profile.predicates.iter().enumerate() {
            if pred.is_dont_care() {
                continue;
            }
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            let name = self.schema.attribute(AttrId::new(i as u32)).name();
            write!(f, "{name} {pred}")?;
        }
        write!(f, ")")
    }
}

/// Incremental [`Profile`] construction with schema validation.
#[derive(Debug)]
pub struct ProfileBuilder<'a> {
    schema: &'a Schema,
    predicates: Vec<Predicate>,
}

impl ProfileBuilder<'_> {
    /// Sets the predicate of the attribute called `name`.
    ///
    /// The predicate's values are validated against the attribute domain
    /// immediately, so an invalid profile never enters a [`ProfileSet`].
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::UnknownAttribute`] for undeclared names and
    /// domain errors for ill-typed or out-of-range predicate values.
    pub fn predicate(mut self, name: &str, predicate: Predicate) -> Result<Self, TypesError> {
        let id = self.schema.require(name)?;
        predicate.to_intervals(self.schema.attribute(id).domain())?;
        self.predicates[id.index()] = predicate;
        Ok(self)
    }

    /// Sets the predicate of the attribute with id `attr`.
    ///
    /// # Errors
    ///
    /// Returns domain errors for ill-typed or out-of-range values.
    pub fn predicate_by_id(
        mut self,
        attr: AttrId,
        predicate: Predicate,
    ) -> Result<Self, TypesError> {
        predicate.to_intervals(self.schema.attribute(attr).domain())?;
        self.predicates[attr.index()] = predicate;
        Ok(self)
    }

    /// Finalises the profile under the given id.
    #[must_use]
    pub fn build(self, id: ProfileId) -> Profile {
        Profile {
            id,
            predicates: self.predicates,
        }
    }
}

/// The set `P` of all profiles registered with a service.
///
/// Profile ids are dense: the profile with id `k` lives at position `k`.
///
/// # Example
///
/// ```
/// use ens_types::{Schema, Domain, Predicate, ProfileSet};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let schema = Schema::builder()
///     .attribute("temperature", Domain::int(-30, 50))?
///     .build();
/// let mut profiles = ProfileSet::new(&schema);
/// let id = profiles.insert_with(|b| b.predicate("temperature", Predicate::ge(35)))?;
/// assert_eq!(profiles.len(), 1);
/// assert_eq!(profiles.get(id).unwrap().id(), id);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSet {
    schema: Schema,
    profiles: Vec<Profile>,
}

impl ProfileSet {
    /// Creates an empty profile set over `schema`.
    #[must_use]
    pub fn new(schema: &Schema) -> Self {
        ProfileSet {
            schema: schema.clone(),
            profiles: Vec::new(),
        }
    }

    /// The schema profiles are defined against.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of profiles `p`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the set holds no profiles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Inserts a profile built by `f`, assigning the next dense id.
    ///
    /// # Errors
    ///
    /// Propagates errors from the builder closure.
    pub fn insert_with<F>(&mut self, f: F) -> Result<ProfileId, TypesError>
    where
        F: FnOnce(ProfileBuilder<'_>) -> Result<ProfileBuilder<'_>, TypesError>,
    {
        let id = ProfileId::new(self.profiles.len() as u32);
        let builder = f(Profile::builder(&self.schema))?;
        self.profiles.push(builder.build(id));
        Ok(id)
    }

    /// Inserts an externally built profile, reassigning its id to keep ids
    /// dense, and returns the assigned id.
    pub fn insert(&mut self, mut profile: Profile) -> ProfileId {
        let id = ProfileId::new(self.profiles.len() as u32);
        profile.id = id;
        self.profiles.push(profile);
        id
    }

    /// The profile with the given id.
    #[must_use]
    pub fn get(&self, id: ProfileId) -> Option<&Profile> {
        self.profiles.get(id.index())
    }

    /// Iterates over all profiles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Profile> {
        self.profiles.iter()
    }

    /// Evaluates every profile against `event` by direct predicate
    /// evaluation and returns ids of matches, in ascending order. This is
    /// the reference oracle for the tree matchers.
    ///
    /// # Errors
    ///
    /// Propagates domain errors for ill-typed event values.
    pub fn matches(&self, event: &Event) -> Result<Vec<ProfileId>, TypesError> {
        let mut out = Vec::new();
        for p in &self.profiles {
            if p.matches(&self.schema, event)? {
                out.push(p.id());
            }
        }
        Ok(out)
    }
}

impl Extend<Profile> for ProfileSet {
    fn extend<I: IntoIterator<Item = Profile>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Event, Value};

    /// The toy monitoring schema of the paper's Example 1.
    fn example1() -> (Schema, ProfileSet) {
        let schema = Schema::builder()
            .attribute("a1", Domain::int(-30, 50))
            .unwrap()
            .attribute("a2", Domain::int(0, 100))
            .unwrap()
            .attribute("a3", Domain::int(1, 100))
            .unwrap()
            .build();
        let mut ps = ProfileSet::new(&schema);
        // P1: a1 >= 35, a2 >= 90
        ps.insert_with(|b| {
            b.predicate("a1", Predicate::ge(35))?
                .predicate("a2", Predicate::ge(90))
        })
        .unwrap();
        // P2: a1 >= 30, a2 >= 90
        ps.insert_with(|b| {
            b.predicate("a1", Predicate::ge(30))?
                .predicate("a2", Predicate::ge(90))
        })
        .unwrap();
        // P3: a1 >= 30, a2 >= 90, a3 in [35, 50]
        ps.insert_with(|b| {
            b.predicate("a1", Predicate::ge(30))?
                .predicate("a2", Predicate::ge(90))?
                .predicate("a3", Predicate::between(35, 50))
        })
        .unwrap();
        // P4: a1 in [-30, -20], a2 <= 5, a3 in [40, 100]
        ps.insert_with(|b| {
            b.predicate("a1", Predicate::between(-30, -20))?
                .predicate("a2", Predicate::le(5))?
                .predicate("a3", Predicate::between(40, 100))
        })
        .unwrap();
        // P5: a1 >= 30, a2 >= 80
        ps.insert_with(|b| {
            b.predicate("a1", Predicate::ge(30))?
                .predicate("a2", Predicate::ge(80))
        })
        .unwrap();
        (schema, ps)
    }

    #[test]
    fn paper_example1_event_matches_p2_p5() {
        // The paper's event (1): temperature 30, humidity 90, radiation 2
        // matches exactly P2 and P5.
        let (schema, ps) = example1();
        let e = Event::builder(&schema)
            .value("a1", 30)
            .unwrap()
            .value("a2", 90)
            .unwrap()
            .value("a3", 2)
            .unwrap()
            .build();
        let got = ps.matches(&e).unwrap();
        assert_eq!(got, vec![ProfileId::new(1), ProfileId::new(4)]);
    }

    #[test]
    fn missing_attribute_fails_specified_predicates() {
        let (schema, ps) = example1();
        let e = Event::builder(&schema).value("a3", 45).unwrap().build();
        // No profile is satisfied: all five specify a1 and a2.
        assert!(ps.matches(&e).unwrap().is_empty());
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let (_, ps) = example1();
        for (k, p) in ps.iter().enumerate() {
            assert_eq!(p.id().index(), k);
        }
        assert_eq!(ps.len(), 5);
        assert_eq!(ps.get(ProfileId::new(2)).unwrap().specified_len(), 3);
        assert!(ps.get(ProfileId::new(99)).is_none());
    }

    #[test]
    fn insert_reassigns_id() {
        let (schema, mut ps) = example1();
        let stray = Profile::builder(&schema).build(ProfileId::new(77));
        let id = ps.insert(stray);
        assert_eq!(id, ProfileId::new(5));
        assert_eq!(ps.get(id).unwrap().id(), id);
    }

    #[test]
    fn profile_display_skips_dont_care() {
        let (schema, ps) = example1();
        let text = ps
            .get(ProfileId::new(0))
            .unwrap()
            .display(&schema)
            .to_string();
        assert_eq!(text, "profile(a1 >= 35; a2 >= 90)");
    }

    #[test]
    fn builder_rejects_invalid_predicate_values() {
        let (schema, _) = example1();
        assert!(Profile::builder(&schema)
            .predicate("a2", Predicate::eq(1000))
            .is_err());
        assert!(Profile::builder(&schema)
            .predicate("nope", Predicate::eq(1))
            .is_err());
    }

    #[test]
    fn from_predicates_checks_arity() {
        let (schema, _) = example1();
        assert!(Profile::from_predicates(&schema, ProfileId::new(0), vec![]).is_err());
        let p = Profile::from_predicates(
            &schema,
            ProfileId::new(0),
            vec![Predicate::DontCare, Predicate::eq(3), Predicate::DontCare],
        )
        .unwrap();
        assert_eq!(p.specified_len(), 1);
    }

    #[test]
    fn dont_care_profile_matches_everything() {
        let (schema, _) = example1();
        let p = Profile::builder(&schema).build(ProfileId::new(0));
        let empty = Event::builder(&schema).build();
        assert!(p.matches(&schema, &empty).unwrap());
        let full = Event::builder(&schema)
            .value("a1", 0)
            .unwrap()
            .value("a2", 0)
            .unwrap()
            .value("a3", 1)
            .unwrap()
            .build();
        assert!(p.matches(&schema, &full).unwrap());
    }

    #[test]
    fn serde_round_trip() {
        let (_, ps) = example1();
        let json = serde_json::to_string(&ps).unwrap();
        let back: ProfileSet = serde_json::from_str(&json).unwrap();
        assert_eq!(ps, back);
        let e = Event::builder(back.schema())
            .value("a1", 40)
            .unwrap()
            .value("a2", 95)
            .unwrap()
            .value("a3", 40)
            .unwrap()
            .build();
        assert_eq!(back.matches(&e).unwrap().len(), 4, "P1, P2, P3, P5");
    }

    #[test]
    fn extend_collects_profiles() {
        let (schema, mut ps) = example1();
        let extra: Vec<Profile> = (0..3)
            .map(|_| Profile::builder(&schema).build(ProfileId::new(0)))
            .collect();
        ps.extend(extra);
        assert_eq!(ps.len(), 8);
    }

    #[test]
    fn value_imported_for_match_checks() {
        // Regression guard: matching uses index_of under the hood.
        let (schema, ps) = example1();
        let e = Event::builder(&schema)
            .value("a1", Value::Int(-25))
            .unwrap()
            .value("a2", 3)
            .unwrap()
            .value("a3", 50)
            .unwrap()
            .build();
        assert_eq!(ps.matches(&e).unwrap(), vec![ProfileId::new(3)]);
    }
}
