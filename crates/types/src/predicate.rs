use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Domain, IndexInterval, IntervalSet, TypesError, Value};

/// The comparison operator class of a predicate, used by the statistics
/// component (`ens-filter`) which keeps *counters for operators* (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Operator {
    /// Equality test `a = v`.
    Eq,
    /// Inequality test `a != v`.
    Ne,
    /// Strict less-than `a < v`.
    Lt,
    /// Less-or-equal `a <= v`.
    Le,
    /// Strict greater-than `a > v`.
    Gt,
    /// Greater-or-equal `a >= v`.
    Ge,
    /// Inclusive range test `a in [lo, hi]`.
    Between,
    /// Set containment `a in {v1, …}`.
    In,
    /// Negated set containment `a not in {v1, …}`.
    NotIn,
    /// Don't-care `a = *`.
    DontCare,
}

impl Operator {
    /// Stable list of all operators, handy for statistics tables.
    pub const ALL: [Operator; 10] = [
        Operator::Eq,
        Operator::Ne,
        Operator::Lt,
        Operator::Le,
        Operator::Gt,
        Operator::Ge,
        Operator::Between,
        Operator::In,
        Operator::NotIn,
        Operator::DontCare,
    ];

    /// The operator's surface syntax, as accepted by the profile parser.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Operator::Eq => "=",
            Operator::Ne => "!=",
            Operator::Lt => "<",
            Operator::Le => "<=",
            Operator::Gt => ">",
            Operator::Ge => ">=",
            Operator::Between => "in []",
            Operator::In => "in {}",
            Operator::NotIn => "not in {}",
            Operator::DontCare => "*",
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A single-attribute predicate of a [`Profile`](crate::Profile).
///
/// Following §3 of the paper, every predicate over an ordered finite
/// domain lowers to a union of index intervals ([`Predicate::to_intervals`]);
/// inequality tests translate to range tests. `DontCare` is the paper's
/// `*` value.
///
/// # Example
///
/// ```
/// use ens_types::{Domain, Predicate, Value};
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let d = Domain::int(0, 100);
/// let p = Predicate::between(80, 90);
/// assert!(p.matches(&d, &Value::Int(85))?);
/// assert!(!p.matches(&d, &Value::Int(91))?);
/// assert_eq!(p.to_intervals(&d)?.covered_len(), 11);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum Predicate {
    /// Matches every value (the paper's `*`).
    #[default]
    DontCare,
    /// `a = v`.
    Eq(Value),
    /// `a != v`.
    Ne(Value),
    /// `a < v`.
    Lt(Value),
    /// `a <= v`.
    Le(Value),
    /// `a > v`.
    Gt(Value),
    /// `a >= v`.
    Ge(Value),
    /// `a ∈ [lo, hi]` (inclusive on both ends).
    Between(Value, Value),
    /// `a ∈ {v1, …}`.
    In(Vec<Value>),
    /// `a ∉ {v1, …}`.
    NotIn(Vec<Value>),
}

impl Predicate {
    /// `a = v` from anything convertible to a value.
    pub fn eq(v: impl Into<Value>) -> Self {
        Predicate::Eq(v.into())
    }

    /// `a != v` from anything convertible to a value.
    pub fn ne(v: impl Into<Value>) -> Self {
        Predicate::Ne(v.into())
    }

    /// `a < v` from anything convertible to a value.
    pub fn lt(v: impl Into<Value>) -> Self {
        Predicate::Lt(v.into())
    }

    /// `a <= v` from anything convertible to a value.
    pub fn le(v: impl Into<Value>) -> Self {
        Predicate::Le(v.into())
    }

    /// `a > v` from anything convertible to a value.
    pub fn gt(v: impl Into<Value>) -> Self {
        Predicate::Gt(v.into())
    }

    /// `a >= v` from anything convertible to a value.
    pub fn ge(v: impl Into<Value>) -> Self {
        Predicate::Ge(v.into())
    }

    /// `a ∈ [lo, hi]` from anything convertible to values.
    pub fn between(lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate::Between(lo.into(), hi.into())
    }

    /// `a ∈ {vs…}` from anything convertible to values.
    pub fn in_set<I, V>(vs: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Predicate::In(vs.into_iter().map(Into::into).collect())
    }

    /// Whether this is the don't-care predicate.
    #[must_use]
    pub fn is_dont_care(&self) -> bool {
        matches!(self, Predicate::DontCare)
    }

    /// The operator class, for statistics.
    #[must_use]
    pub fn operator(&self) -> Operator {
        match self {
            Predicate::DontCare => Operator::DontCare,
            Predicate::Eq(_) => Operator::Eq,
            Predicate::Ne(_) => Operator::Ne,
            Predicate::Lt(_) => Operator::Lt,
            Predicate::Le(_) => Operator::Le,
            Predicate::Gt(_) => Operator::Gt,
            Predicate::Ge(_) => Operator::Ge,
            Predicate::Between(_, _) => Operator::Between,
            Predicate::In(_) => Operator::In,
            Predicate::NotIn(_) => Operator::NotIn,
        }
    }

    /// Lowers the predicate to a normalised union of index intervals over
    /// `domain`'s grid (the paper's translation of value and inequality
    /// tests into range tests).
    ///
    /// # Errors
    ///
    /// Propagates kind mismatches and out-of-domain values; rejects
    /// reversed `Between` bounds with [`TypesError::InvalidRange`].
    pub fn to_intervals(&self, domain: &Domain) -> Result<IntervalSet, TypesError> {
        let d = domain.size();
        let set = match self {
            Predicate::DontCare => IntervalSet::full(d),
            Predicate::Eq(v) => {
                IntervalSet::from_intervals(vec![IndexInterval::point(domain.index_of(v)?)])
            }
            Predicate::Ne(v) => {
                let i = domain.index_of(v)?;
                IntervalSet::from_intervals(vec![
                    IndexInterval::new(0, i),
                    IndexInterval::new(i + 1, d),
                ])
            }
            Predicate::Lt(v) => {
                IntervalSet::from_intervals(vec![IndexInterval::new(0, domain.index_of(v)?)])
            }
            Predicate::Le(v) => {
                IntervalSet::from_intervals(vec![IndexInterval::new(0, domain.index_of(v)? + 1)])
            }
            Predicate::Gt(v) => {
                IntervalSet::from_intervals(vec![IndexInterval::new(domain.index_of(v)? + 1, d)])
            }
            Predicate::Ge(v) => {
                IntervalSet::from_intervals(vec![IndexInterval::new(domain.index_of(v)?, d)])
            }
            Predicate::Between(lo, hi) => {
                let (i, j) = (domain.index_of(lo)?, domain.index_of(hi)?);
                if j < i {
                    return Err(TypesError::InvalidRange {
                        lo: lo.to_string(),
                        hi: hi.to_string(),
                    });
                }
                IntervalSet::from_intervals(vec![IndexInterval::new(i, j + 1)])
            }
            Predicate::In(vs) => {
                let mut ivs = Vec::with_capacity(vs.len());
                for v in vs {
                    ivs.push(IndexInterval::point(domain.index_of(v)?));
                }
                IntervalSet::from_intervals(ivs)
            }
            Predicate::NotIn(vs) => {
                let mut ivs = Vec::with_capacity(vs.len());
                for v in vs {
                    ivs.push(IndexInterval::point(domain.index_of(v)?));
                }
                IntervalSet::from_intervals(ivs).complement(d)
            }
        };
        Ok(set)
    }

    /// Direct evaluation against a single value.
    ///
    /// # Errors
    ///
    /// Propagates the same domain errors as [`Predicate::to_intervals`].
    pub fn matches(&self, domain: &Domain, value: &Value) -> Result<bool, TypesError> {
        if self.is_dont_care() {
            return Ok(true);
        }
        let i = domain.index_of(value)?;
        Ok(self.to_intervals(domain)?.contains(i))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, vs: &[Value]) -> fmt::Result {
            write!(f, "{{")?;
            for (k, v) in vs.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")
        }
        match self {
            Predicate::DontCare => write!(f, "*"),
            Predicate::Eq(v) => write!(f, "= {v}"),
            Predicate::Ne(v) => write!(f, "!= {v}"),
            Predicate::Lt(v) => write!(f, "< {v}"),
            Predicate::Le(v) => write!(f, "<= {v}"),
            Predicate::Gt(v) => write!(f, "> {v}"),
            Predicate::Ge(v) => write!(f, ">= {v}"),
            Predicate::Between(lo, hi) => write!(f, "in [{lo}, {hi}]"),
            Predicate::In(vs) => {
                write!(f, "in ")?;
                list(f, vs)
            }
            Predicate::NotIn(vs) => {
                write!(f, "not in ")?;
                list(f, vs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Domain {
        Domain::int(0, 10)
    }

    #[test]
    fn eq_and_ne_lower_to_intervals() {
        let s = Predicate::eq(5).to_intervals(&d()).unwrap();
        assert_eq!(s.as_slice(), &[IndexInterval::point(5)]);
        let s = Predicate::ne(5).to_intervals(&d()).unwrap();
        assert_eq!(
            s.as_slice(),
            &[IndexInterval::new(0, 5), IndexInterval::new(6, 11)]
        );
    }

    #[test]
    fn comparisons_lower_to_prefixes_and_suffixes() {
        assert_eq!(
            Predicate::lt(3).to_intervals(&d()).unwrap().covered_len(),
            3
        );
        assert_eq!(
            Predicate::le(3).to_intervals(&d()).unwrap().covered_len(),
            4
        );
        assert_eq!(
            Predicate::gt(3).to_intervals(&d()).unwrap().covered_len(),
            7
        );
        assert_eq!(
            Predicate::ge(3).to_intervals(&d()).unwrap().covered_len(),
            8
        );
    }

    #[test]
    fn ne_at_domain_edges() {
        let s = Predicate::ne(0).to_intervals(&d()).unwrap();
        assert_eq!(s.as_slice(), &[IndexInterval::new(1, 11)]);
        let s = Predicate::ne(10).to_intervals(&d()).unwrap();
        assert_eq!(s.as_slice(), &[IndexInterval::new(0, 10)]);
    }

    #[test]
    fn between_is_inclusive_and_validates_order() {
        let s = Predicate::between(2, 4).to_intervals(&d()).unwrap();
        assert_eq!(s.as_slice(), &[IndexInterval::new(2, 5)]);
        assert!(matches!(
            Predicate::between(4, 2).to_intervals(&d()),
            Err(TypesError::InvalidRange { .. })
        ));
    }

    #[test]
    fn in_set_merges_adjacent_points() {
        let s = Predicate::in_set([1, 2, 3, 7]).to_intervals(&d()).unwrap();
        assert_eq!(
            s.as_slice(),
            &[IndexInterval::new(1, 4), IndexInterval::point(7)]
        );
    }

    #[test]
    fn not_in_complements() {
        let s = Predicate::NotIn(vec![Value::Int(0), Value::Int(10)])
            .to_intervals(&d())
            .unwrap();
        assert_eq!(s.as_slice(), &[IndexInterval::new(1, 10)]);
    }

    #[test]
    fn dont_care_covers_domain() {
        let s = Predicate::DontCare.to_intervals(&d()).unwrap();
        assert_eq!(s.covered_len(), 11);
        assert!(Predicate::DontCare.matches(&d(), &Value::Int(7)).unwrap());
    }

    #[test]
    fn matches_agrees_with_intervals() {
        let preds = [
            Predicate::eq(5),
            Predicate::ne(5),
            Predicate::lt(5),
            Predicate::le(5),
            Predicate::gt(5),
            Predicate::ge(5),
            Predicate::between(2, 8),
            Predicate::in_set([1, 5, 9]),
            Predicate::NotIn(vec![Value::Int(1), Value::Int(5)]),
        ];
        let domain = d();
        for p in &preds {
            let ivs = p.to_intervals(&domain).unwrap();
            for i in 0..domain.size() {
                let v = domain.value_at(i);
                assert_eq!(
                    p.matches(&domain, &v).unwrap(),
                    ivs.contains(i),
                    "predicate {p}, value {v}"
                );
            }
        }
    }

    #[test]
    fn out_of_domain_value_is_error() {
        assert!(Predicate::eq(99).to_intervals(&d()).is_err());
        assert!(Predicate::eq("x").to_intervals(&d()).is_err());
    }

    #[test]
    fn operator_classification() {
        assert_eq!(Predicate::eq(1).operator(), Operator::Eq);
        assert_eq!(Predicate::DontCare.operator(), Operator::DontCare);
        assert_eq!(Predicate::between(1, 2).operator(), Operator::Between);
        assert_eq!(Operator::ALL.len(), 10);
    }

    #[test]
    fn display_round_trips_concepts() {
        assert_eq!(Predicate::ge(35).to_string(), ">= 35");
        assert_eq!(Predicate::between(40, 100).to_string(), "in [40, 100]");
        assert_eq!(Predicate::DontCare.to_string(), "*");
    }

    #[test]
    fn works_on_categorical_domains() {
        let dom = Domain::categorical(["calm", "breeze", "storm"]).unwrap();
        let p = Predicate::ge("breeze");
        assert!(p.matches(&dom, &Value::from("storm")).unwrap());
        assert!(!p.matches(&dom, &Value::from("calm")).unwrap());
    }
}
