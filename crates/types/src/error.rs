use std::fmt;

/// Errors produced by the `ens-types` data model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TypesError {
    /// An attribute name was not declared in the schema.
    UnknownAttribute(String),
    /// An attribute was declared twice in a schema.
    DuplicateAttribute(String),
    /// A value's type does not match the attribute's domain.
    TypeMismatch {
        /// Attribute whose domain was violated.
        attribute: String,
        /// Human-readable description of the expected kind.
        expected: &'static str,
        /// Human-readable description of the supplied value.
        found: String,
    },
    /// A value lies outside the attribute's domain.
    OutOfDomain {
        /// Attribute whose domain was violated.
        attribute: String,
        /// Display form of the offending value.
        value: String,
    },
    /// A domain was constructed with zero points (e.g. `hi < lo`).
    EmptyDomain(String),
    /// A range predicate had its bounds reversed.
    InvalidRange {
        /// Display form of the lower bound.
        lo: String,
        /// Display form of the upper bound.
        hi: String,
    },
    /// A floating-point value was NaN or infinite.
    NonFiniteValue,
    /// Textual profile/event parsing failed.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset into the input where the error was detected.
        position: usize,
    },
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::UnknownAttribute(name) => {
                write!(f, "unknown attribute `{name}`")
            }
            TypesError::DuplicateAttribute(name) => {
                write!(f, "attribute `{name}` declared more than once")
            }
            TypesError::TypeMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on attribute `{attribute}`: expected {expected}, found {found}"
            ),
            TypesError::OutOfDomain { attribute, value } => {
                write!(f, "value {value} is outside the domain of `{attribute}`")
            }
            TypesError::EmptyDomain(desc) => write!(f, "domain {desc} contains no points"),
            TypesError::InvalidRange { lo, hi } => {
                write!(
                    f,
                    "invalid range: lower bound {lo} exceeds upper bound {hi}"
                )
            }
            TypesError::NonFiniteValue => write!(f, "floating-point value was not finite"),
            TypesError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors = [
            TypesError::UnknownAttribute("x".into()),
            TypesError::EmptyDomain("Int{lo: 5, hi: 4}".into()),
            TypesError::NonFiniteValue,
            TypesError::Parse {
                message: "unexpected token".into(),
                position: 3,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.ends_with('.'), "no trailing period: {s}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<TypesError>();
    }
}
