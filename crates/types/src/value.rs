use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::TypesError;

/// A finite (non-NaN, non-infinite) `f64` with total order and hashing.
///
/// Construction validates finiteness, so every `FiniteF64` is safely
/// orderable and hashable. Negative zero is normalised to positive zero so
/// that `-0.0 == 0.0` also holds for hashing.
///
/// # Example
///
/// ```
/// use ens_types::FiniteF64;
/// # fn main() -> Result<(), ens_types::TypesError> {
/// let x = FiniteF64::new(1.5)?;
/// assert!(x < FiniteF64::new(2.0)?);
/// assert!(FiniteF64::new(f64::NAN).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Serialize)]
#[serde(transparent)]
pub struct FiniteF64(f64);

impl FiniteF64 {
    /// Creates a finite float.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::NonFiniteValue`] if `x` is NaN or infinite.
    pub fn new(x: f64) -> Result<Self, TypesError> {
        if x.is_finite() {
            // Normalise -0.0 so Eq/Hash agree.
            Ok(FiniteF64(if x == 0.0 { 0.0 } else { x }))
        } else {
            Err(TypesError::NonFiniteValue)
        }
    }

    /// Returns the wrapped `f64`.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for FiniteF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for FiniteF64 {}

impl PartialOrd for FiniteF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite floats always compare.
        self.0.partial_cmp(&other.0).expect("finite floats compare")
    }
}

impl Hash for FiniteF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for FiniteF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<'de> Deserialize<'de> for FiniteF64 {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        let x = f64::deserialize(deserializer)?;
        FiniteF64::new(x).map_err(serde::de::Error::custom)
    }
}

impl TryFrom<f64> for FiniteF64 {
    type Error = TypesError;
    fn try_from(x: f64) -> Result<Self, TypesError> {
        FiniteF64::new(x)
    }
}

/// A typed attribute value carried by events and referenced by predicates.
///
/// Values of different kinds never compare equal; ordering across kinds is
/// by kind tag (`Bool < Int < Float < Str`) purely so that collections of
/// mixed values are well behaved — domains are always homogeneous, so
/// cross-kind order never influences matching semantics.
///
/// # Example
///
/// ```
/// use ens_types::Value;
/// let a = Value::from(30);
/// let b = Value::from("storm");
/// assert_ne!(a, b);
/// assert_eq!(a, Value::Int(30));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer value.
    Int(i64),
    /// Finite floating-point value.
    Float(FiniteF64),
    /// Categorical / string value.
    Str(String),
}

impl Value {
    /// Creates a float value.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::NonFiniteValue`] if `x` is NaN or infinite.
    pub fn float(x: f64) -> Result<Self, TypesError> {
        Ok(Value::Float(FiniteF64::new(x)?))
    }

    /// A short name for the value's kind, used in error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a [`Value::Float`].
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(x.get()),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(x) => write!(f, "{x}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(x)
    }
}
impl From<i32> for Value {
    fn from(x: i32) -> Self {
        Value::Int(i64::from(x))
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<FiniteF64> for Value {
    fn from(x: FiniteF64) -> Self {
        Value::Float(x)
    }
}
impl TryFrom<f64> for Value {
    type Error = TypesError;
    fn try_from(x: f64) -> Result<Self, TypesError> {
        Value::float(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn finite_f64_rejects_nan_and_infinity() {
        assert!(FiniteF64::new(f64::NAN).is_err());
        assert!(FiniteF64::new(f64::INFINITY).is_err());
        assert!(FiniteF64::new(f64::NEG_INFINITY).is_err());
        assert!(FiniteF64::new(0.0).is_ok());
    }

    #[test]
    fn negative_zero_normalised() {
        let a = FiniteF64::new(-0.0).unwrap();
        let b = FiniteF64::new(0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn finite_f64_total_order() {
        let mut xs = vec![
            FiniteF64::new(3.0).unwrap(),
            FiniteF64::new(-1.5).unwrap(),
            FiniteF64::new(0.0).unwrap(),
        ];
        xs.sort();
        let got: Vec<f64> = xs.into_iter().map(FiniteF64::get).collect();
        assert_eq!(got, vec![-1.5, 0.0, 3.0]);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("a"), Value::Str("a".into()));
        assert_eq!(Value::try_from(2.5).unwrap().as_float(), Some(2.5));
        assert!(Value::try_from(f64::NAN).is_err());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn value_kind_names() {
        assert_eq!(Value::Int(0).kind(), "int");
        assert_eq!(Value::Bool(false).kind(), "bool");
        assert_eq!(Value::float(1.0).unwrap().kind(), "float");
        assert_eq!(Value::from("s").kind(), "string");
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn value_serde_round_trip() {
        let vals = vec![
            Value::Int(1),
            Value::float(0.25).unwrap(),
            Value::from("cat"),
            Value::Bool(false),
        ];
        let json = serde_json::to_string(&vals).unwrap();
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(vals, back);
    }

    #[test]
    fn nan_rejected_at_deserialization() {
        let r: Result<FiniteF64, _> = serde_json::from_str("1e999");
        assert!(r.is_err());
    }
}
