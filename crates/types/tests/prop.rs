//! Property-based tests for the `ens-types` data model invariants.

use ens_types::{
    covers, CoverOutcome, CoverSet, Domain, Event, IndexInterval, IntervalSet, Predicate, Profile,
    ProfileId, Schema, Value,
};
use proptest::prelude::*;

fn arb_interval(max: u64) -> impl Strategy<Value = IndexInterval> {
    (0..max, 0..max).prop_map(|(a, b)| IndexInterval::new(a.min(b), a.max(b)))
}

fn arb_interval_set(max: u64) -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(arb_interval(max), 0..8).prop_map(IntervalSet::from_intervals)
}

proptest! {
    /// Normalisation: sets are sorted, disjoint and non-adjacent.
    #[test]
    fn interval_set_is_normalised(s in arb_interval_set(64)) {
        let ivs = s.as_slice();
        for w in ivs.windows(2) {
            prop_assert!(w[0].hi() < w[1].lo(), "sorted, disjoint, gap >= 1: {s}");
        }
        for iv in ivs {
            prop_assert!(!iv.is_empty());
        }
    }

    /// `contains` agrees with a linear scan over intervals.
    #[test]
    fn interval_set_contains_agrees_with_scan(s in arb_interval_set(64), i in 0u64..64) {
        let scan = s.iter().any(|iv| iv.contains(i));
        prop_assert_eq!(s.contains(i), scan);
    }

    /// Union and intersection behave pointwise.
    #[test]
    fn union_intersect_pointwise(a in arb_interval_set(48), b in arb_interval_set(48), i in 0u64..48) {
        prop_assert_eq!(a.union(&b).contains(i), a.contains(i) || b.contains(i));
        prop_assert_eq!(a.intersect(&b).contains(i), a.contains(i) && b.contains(i));
    }

    /// Complement is an involution and is pointwise correct within [0, d).
    #[test]
    fn complement_involution(a in arb_interval_set(48), i in 0u64..48) {
        let c = a.complement(48);
        prop_assert_eq!(c.contains(i), !a.contains(i));
        prop_assert_eq!(c.complement(48), a.intersect(&IntervalSet::full(48)));
    }

    /// covered_len is preserved by the partition into set and complement.
    #[test]
    fn covered_len_partitions_domain(a in arb_interval_set(48)) {
        let clipped = a.intersect(&IntervalSet::full(48));
        prop_assert_eq!(clipped.covered_len() + a.complement(48).covered_len(), 48);
    }
}

fn int_domain() -> Domain {
    Domain::int(-20, 20)
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let v = -20i64..=20;
    prop_oneof![
        Just(Predicate::DontCare),
        v.clone().prop_map(Predicate::eq),
        v.clone().prop_map(Predicate::ne),
        v.clone().prop_map(Predicate::lt),
        v.clone().prop_map(Predicate::le),
        v.clone().prop_map(Predicate::gt),
        v.clone().prop_map(Predicate::ge),
        (v.clone(), v.clone()).prop_map(|(a, b)| Predicate::between(a.min(b), a.max(b))),
        prop::collection::vec(v.clone(), 1..5).prop_map(Predicate::in_set),
        prop::collection::vec(v, 1..5)
            .prop_map(|vs| Predicate::NotIn(vs.into_iter().map(Value::Int).collect())),
    ]
}

proptest! {
    /// Interval lowering and direct evaluation agree on every domain point.
    #[test]
    fn predicate_lowering_is_sound(p in arb_predicate(), x in -20i64..=20) {
        let d = int_domain();
        let ivs = p.to_intervals(&d).unwrap();
        let i = d.index_of(&Value::Int(x)).unwrap();
        prop_assert_eq!(p.matches(&d, &Value::Int(x)).unwrap(), ivs.contains(i));
    }

    /// Profiles round-trip through their display syntax.
    #[test]
    fn profile_display_parse_round_trip(preds in prop::collection::vec(arb_predicate(), 3)) {
        let schema = Schema::builder()
            .attribute("a0", int_domain()).unwrap()
            .attribute("a1", int_domain()).unwrap()
            .attribute("a2", int_domain()).unwrap()
            .build();
        let p = Profile::from_predicates(&schema, ProfileId::new(0), preds).unwrap();
        let text = p.display(&schema).to_string();
        let back = ens_types::parse::parse_profile(&schema, &text, ProfileId::new(0)).unwrap();
        // Compare by lowered semantics (display may normalise operator
        // spellings, e.g. `in {5}` still parses as In).
        for (a, b) in p.predicates().iter().zip(back.predicates()) {
            let d = int_domain();
            prop_assert_eq!(a.to_intervals(&d).unwrap(), b.to_intervals(&d).unwrap());
        }
    }

    /// Serde round-trips preserve profile semantics.
    #[test]
    fn profile_serde_round_trip(preds in prop::collection::vec(arb_predicate(), 3)) {
        let schema = Schema::builder()
            .attribute("a0", int_domain()).unwrap()
            .attribute("a1", int_domain()).unwrap()
            .attribute("a2", int_domain()).unwrap()
            .build();
        let p = Profile::from_predicates(&schema, ProfileId::new(0), preds).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(p, back);
    }

    /// Domain index mapping is a bijection on every kind of domain.
    #[test]
    fn domain_index_bijection(seed in 0u64..4) {
        let d = match seed {
            0 => Domain::int(-5, 5),
            1 => Domain::float(0.0, 3.0, 0.5).unwrap(),
            2 => Domain::categorical(["a", "b", "c", "d"]).unwrap(),
            _ => Domain::Bool,
        };
        for i in 0..d.size() {
            prop_assert_eq!(d.try_index_of(&d.value_at(i)), Some(i));
        }
    }
}

/// Mixed-kind schema for the covering oracle: int, float, categorical.
fn cov_schema() -> Schema {
    Schema::builder()
        .attribute("x", Domain::int(-4, 4))
        .unwrap()
        .attribute("f", Domain::float(0.0, 1.5, 0.5).unwrap())
        .unwrap()
        .attribute("k", Domain::categorical(["a", "b", "c"]).unwrap())
        .unwrap()
        .build()
}

fn arb_cov_pred_int() -> impl Strategy<Value = Predicate> {
    let v = -4i64..=4;
    prop_oneof![
        Just(Predicate::DontCare),
        v.clone().prop_map(Predicate::eq),
        v.clone().prop_map(Predicate::ne),
        v.clone().prop_map(Predicate::ge),
        v.clone().prop_map(Predicate::le),
        (v.clone(), v.clone()).prop_map(|(a, b)| Predicate::between(a.min(b), a.max(b))),
        prop::collection::vec(v, 0..4).prop_map(Predicate::in_set),
    ]
}

fn arb_cov_pred_float() -> impl Strategy<Value = Predicate> {
    let v = (0u64..4).prop_map(|i| ens_types::FiniteF64::new(0.5 * i as f64).unwrap());
    prop_oneof![
        Just(Predicate::DontCare),
        v.clone().prop_map(Predicate::eq),
        v.clone().prop_map(Predicate::ge),
        v.clone().prop_map(Predicate::lt),
    ]
}

fn arb_cov_pred_cat() -> impl Strategy<Value = Predicate> {
    const CATS: [&str; 3] = ["a", "b", "c"];
    let v = (0usize..3).prop_map(|i| CATS[i]);
    prop_oneof![
        Just(Predicate::DontCare),
        v.clone().prop_map(Predicate::eq),
        prop::collection::vec(v, 1..3).prop_map(Predicate::in_set),
    ]
}

fn arb_cov_profile() -> impl Strategy<Value = Profile> {
    (arb_cov_pred_int(), arb_cov_pred_float(), arb_cov_pred_cat()).prop_map(|(x, f, k)| {
        Profile::from_predicates(&cov_schema(), ProfileId::new(0), vec![x, f, k]).unwrap()
    })
}

/// Every event — including partial ones exercising the `(*)` /
/// missing-attribute fallthrough — in the (size+1)^n assignment grid.
fn all_events(schema: &Schema) -> Vec<Event> {
    let sizes: Vec<u64> = schema.iter().map(|(_, a)| a.domain().size()).collect();
    let mut out = Vec::new();
    let mut assignment: Vec<Option<u64>> = vec![None; sizes.len()];
    loop {
        let ie = ens_types::IndexedEvent::from_indices(assignment.clone());
        out.push(ie.to_event(schema).unwrap());
        // Odometer increment over {None, Some(0..size)} per position.
        let mut j = 0;
        loop {
            if j == sizes.len() {
                return out;
            }
            assignment[j] = match assignment[j] {
                None => Some(0),
                Some(i) if i + 1 < sizes[j] => Some(i + 1),
                Some(_) => {
                    assignment[j] = None;
                    j += 1;
                    continue;
                }
            };
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `covers(a, b)` agrees with the brute-force implication oracle
    /// (every event matching `b` matches `a`) across int/float/
    /// categorical domains, missing attributes, and `(*)` fallthrough.
    #[test]
    fn covers_agrees_with_implication_oracle(a in arb_cov_profile(), b in arb_cov_profile()) {
        let schema = cov_schema();
        let implied = all_events(&schema).iter().all(|e| {
            !b.matches(&schema, e).unwrap() || a.matches(&schema, e).unwrap()
        });
        prop_assert_eq!(covers(&schema, &a, &b).unwrap(), implied);
    }

    /// `CoverSet` detection is sound: every cover it reports — bulk or
    /// probed — is a true cover, and the residual is delivery-exact
    /// (child matches ⟺ rep matches ∧ residual passes).
    #[test]
    fn cover_set_detection_is_sound_and_residuals_exact(
        pop in prop::collection::vec(arb_cov_profile(), 1..12),
        probe in arb_cov_profile(),
    ) {
        let schema = cov_schema();
        let slots: Vec<(u32, &Profile)> =
            pop.iter().enumerate().map(|(i, p)| (i as u32, p)).collect();
        let cover = CoverSet::build_bulk(&schema, slots).unwrap();
        prop_assert_eq!(cover.rep_count() + cover.covered_count(), pop.len());
        let events = all_events(&schema);
        let check = |rep: u32, child: &Profile, residual: &[ens_types::Residual]| {
            let rep_p = &pop[rep as usize];
            assert!(covers(&schema, rep_p, child).unwrap());
            for e in &events {
                let ie = ens_types::IndexedEvent::resolve(&schema, e).unwrap();
                let residual_ok = residual.iter().all(|r| {
                    ie.get(r.attr).is_some_and(|i| r.allowed.contains(i))
                });
                assert_eq!(
                    child.matches(&schema, e).unwrap(),
                    rep_p.matches(&schema, e).unwrap() && residual_ok,
                );
            }
        };
        for (child, rep, residual) in cover.children_sorted() {
            check(rep, &pop[child as usize], residual);
        }
        if let CoverOutcome::Covered { rep, residual } = cover.probe(&probe).unwrap() {
            check(rep, &probe, &residual);
        }
        // Reverse direction: every dominated rep is truly covered by the probe.
        for rep in cover.dominated_reps(&probe).unwrap() {
            prop_assert!(covers(&schema, &probe, &pop[rep as usize]).unwrap());
        }
    }
}
