//! Property-based tests for the `ens-types` data model invariants.

use ens_types::{Domain, IndexInterval, IntervalSet, Predicate, Profile, ProfileId, Schema, Value};
use proptest::prelude::*;

fn arb_interval(max: u64) -> impl Strategy<Value = IndexInterval> {
    (0..max, 0..max).prop_map(|(a, b)| IndexInterval::new(a.min(b), a.max(b)))
}

fn arb_interval_set(max: u64) -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(arb_interval(max), 0..8).prop_map(IntervalSet::from_intervals)
}

proptest! {
    /// Normalisation: sets are sorted, disjoint and non-adjacent.
    #[test]
    fn interval_set_is_normalised(s in arb_interval_set(64)) {
        let ivs = s.as_slice();
        for w in ivs.windows(2) {
            prop_assert!(w[0].hi() < w[1].lo(), "sorted, disjoint, gap >= 1: {s}");
        }
        for iv in ivs {
            prop_assert!(!iv.is_empty());
        }
    }

    /// `contains` agrees with a linear scan over intervals.
    #[test]
    fn interval_set_contains_agrees_with_scan(s in arb_interval_set(64), i in 0u64..64) {
        let scan = s.iter().any(|iv| iv.contains(i));
        prop_assert_eq!(s.contains(i), scan);
    }

    /// Union and intersection behave pointwise.
    #[test]
    fn union_intersect_pointwise(a in arb_interval_set(48), b in arb_interval_set(48), i in 0u64..48) {
        prop_assert_eq!(a.union(&b).contains(i), a.contains(i) || b.contains(i));
        prop_assert_eq!(a.intersect(&b).contains(i), a.contains(i) && b.contains(i));
    }

    /// Complement is an involution and is pointwise correct within [0, d).
    #[test]
    fn complement_involution(a in arb_interval_set(48), i in 0u64..48) {
        let c = a.complement(48);
        prop_assert_eq!(c.contains(i), !a.contains(i));
        prop_assert_eq!(c.complement(48), a.intersect(&IntervalSet::full(48)));
    }

    /// covered_len is preserved by the partition into set and complement.
    #[test]
    fn covered_len_partitions_domain(a in arb_interval_set(48)) {
        let clipped = a.intersect(&IntervalSet::full(48));
        prop_assert_eq!(clipped.covered_len() + a.complement(48).covered_len(), 48);
    }
}

fn int_domain() -> Domain {
    Domain::int(-20, 20)
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let v = -20i64..=20;
    prop_oneof![
        Just(Predicate::DontCare),
        v.clone().prop_map(Predicate::eq),
        v.clone().prop_map(Predicate::ne),
        v.clone().prop_map(Predicate::lt),
        v.clone().prop_map(Predicate::le),
        v.clone().prop_map(Predicate::gt),
        v.clone().prop_map(Predicate::ge),
        (v.clone(), v.clone()).prop_map(|(a, b)| Predicate::between(a.min(b), a.max(b))),
        prop::collection::vec(v.clone(), 1..5).prop_map(Predicate::in_set),
        prop::collection::vec(v, 1..5)
            .prop_map(|vs| Predicate::NotIn(vs.into_iter().map(Value::Int).collect())),
    ]
}

proptest! {
    /// Interval lowering and direct evaluation agree on every domain point.
    #[test]
    fn predicate_lowering_is_sound(p in arb_predicate(), x in -20i64..=20) {
        let d = int_domain();
        let ivs = p.to_intervals(&d).unwrap();
        let i = d.index_of(&Value::Int(x)).unwrap();
        prop_assert_eq!(p.matches(&d, &Value::Int(x)).unwrap(), ivs.contains(i));
    }

    /// Profiles round-trip through their display syntax.
    #[test]
    fn profile_display_parse_round_trip(preds in prop::collection::vec(arb_predicate(), 3)) {
        let schema = Schema::builder()
            .attribute("a0", int_domain()).unwrap()
            .attribute("a1", int_domain()).unwrap()
            .attribute("a2", int_domain()).unwrap()
            .build();
        let p = Profile::from_predicates(&schema, ProfileId::new(0), preds).unwrap();
        let text = p.display(&schema).to_string();
        let back = ens_types::parse::parse_profile(&schema, &text, ProfileId::new(0)).unwrap();
        // Compare by lowered semantics (display may normalise operator
        // spellings, e.g. `in {5}` still parses as In).
        for (a, b) in p.predicates().iter().zip(back.predicates()) {
            let d = int_domain();
            prop_assert_eq!(a.to_intervals(&d).unwrap(), b.to_intervals(&d).unwrap());
        }
    }

    /// Serde round-trips preserve profile semantics.
    #[test]
    fn profile_serde_round_trip(preds in prop::collection::vec(arb_predicate(), 3)) {
        let schema = Schema::builder()
            .attribute("a0", int_domain()).unwrap()
            .attribute("a1", int_domain()).unwrap()
            .attribute("a2", int_domain()).unwrap()
            .build();
        let p = Profile::from_predicates(&schema, ProfileId::new(0), preds).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(p, back);
    }

    /// Domain index mapping is a bijection on every kind of domain.
    #[test]
    fn domain_index_bijection(seed in 0u64..4) {
        let d = match seed {
            0 => Domain::int(-5, 5),
            1 => Domain::float(0.0, 3.0, 0.5).unwrap(),
            2 => Domain::categorical(["a", "b", "c", "d"]).unwrap(),
            _ => Domain::Bool,
        };
        for i in 0..d.size() {
            prop_assert_eq!(d.try_index_of(&d.value_at(i)), Some(i));
        }
    }
}
