//! Self-tuning demonstration — distribution drift → automatic retune.
//!
//! Runs the hot-band-migration drift workload through two brokers:
//! a static one (optimised for phase A, never adapts) and a
//! self-tuning one (online statistics + cost-model-priced retunes).
//! Prints the per-phase cost and the broker metrics before and after
//! the automatic retune.
//!
//! Run with `cargo run --release --example self_tuning`.

use ens::filter::{Direction, RebuildPolicy, SearchStrategy, TreeConfig, TuningPolicy, ValueOrder};
use ens::service::{Broker, BrokerConfig, Subscriber};
use ens::types::Event;
use ens::workloads::{hot_band_migration, DriftWorkload};

fn broker(
    w: &DriftWorkload,
    tuned: bool,
) -> Result<(Broker, Vec<Subscriber>), Box<dyn std::error::Error>> {
    let tree = TreeConfig {
        // V1: scan each node's edges in event-probability order —
        // great while the assumed distribution matches the traffic.
        search: SearchStrategy::Linear(ValueOrder::EventProb(Direction::Descending)),
        // The phase-A model acts as the prior until real observations
        // exist, so both brokers start optimal for phase A.
        event_model: Some(w.model_a.clone()),
        ..TreeConfig::default()
    };
    let config = if tuned {
        BrokerConfig {
            tree,
            rebuild: RebuildPolicy {
                min_events: 256,
                drift_threshold: 0.6,
                ..RebuildPolicy::default()
            },
            tuning: TuningPolicy::standard(),
            ..BrokerConfig::default()
        }
    } else {
        BrokerConfig {
            tree,
            stats_sample: 0, // static: no statistics, no adaptation
            ..BrokerConfig::default()
        }
    };
    let b = Broker::new(&w.schema, config)?;
    let subs = b.subscribe_many(w.profiles.iter().cloned())?;
    Ok((b, subs))
}

fn run_phase(
    b: &Broker,
    subs: &[Subscriber],
    events: &[Event],
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut ops = 0u64;
    for e in events {
        ops += b.publish(e)?.ops;
    }
    for s in subs {
        while s.try_recv().is_some() {}
    }
    Ok(ops as f64 / events.len() as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = hot_band_migration(7, 600, 2_000)?;
    println!(
        "workload: {} profiles (narrow reading bands), {} events/phase, hot band migrates high → low\n",
        w.profiles.len(),
        w.phase_a.len()
    );

    let (static_broker, static_subs) = broker(&w, false)?;
    let (tuned_broker, tuned_subs) = broker(&w, true)?;

    println!("phase A (traffic on the hot band both trees were built for):");
    println!(
        "  static broker: {:6.1} ops/event",
        run_phase(&static_broker, &static_subs, &w.phase_a)?
    );
    println!(
        "  tuning broker: {:6.1} ops/event",
        run_phase(&tuned_broker, &tuned_subs, &w.phase_a)?
    );
    println!("  tuning broker metrics: {}\n", tuned_broker.metrics());

    println!("phase B (hot band migrated — stale ordering scans the wrong end):");
    println!(
        "  static broker: {:6.1} ops/event  (degraded, never adapts)",
        run_phase(&static_broker, &static_subs, &w.phase_b)?
    );
    println!(
        "  tuning broker: {:6.1} ops/event  (drift fired, cost model re-chose the ordering)",
        run_phase(&tuned_broker, &tuned_subs, &w.phase_b)?
    );
    let m = tuned_broker.metrics();
    println!("  tuning broker metrics: {m}\n");

    println!("phase B again (steady state after the retune):");
    println!(
        "  static broker: {:6.1} ops/event",
        run_phase(&static_broker, &static_subs, &w.phase_b)?
    );
    println!(
        "  tuning broker: {:6.1} ops/event  (predicted {:.1})",
        run_phase(&tuned_broker, &tuned_subs, &w.phase_b)?,
        m.predicted_ops_per_event
    );
    println!(
        "  retunes: {} accepted, {} declined; tuning overhead: {:.2} ms total",
        m.retunes,
        m.retunes_declined,
        m.tuning_nanos as f64 / 1e6,
    );
    assert!(m.retunes >= 1, "the drift workload must trigger a retune");
    Ok(())
}
