//! Composite events — the paper's §5 extension: temporal combinations
//! of primitive profile matches. A fire-risk warning fires when heat
//! AND drought are followed by wind within a time window.
//!
//! Run with `cargo run --example composite_events`.

use ens::prelude::*;
use ens::service::{BrokerConfig, CompositeDetector, CompositeExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::builder()
        .attribute("temperature", Domain::int(-30, 50))?
        .attribute("humidity", Domain::int(0, 100))?
        .attribute("wind", Domain::int(0, 120))?
        .build();

    let broker = Broker::new(&schema, BrokerConfig::default())?;
    let heat = broker.subscribe_parsed("profile(temperature >= 35)")?;
    let drought = broker.subscribe_parsed("profile(humidity <= 20)")?;
    let storm = broker.subscribe_parsed("profile(wind >= 70)")?;

    let mut detector = CompositeDetector::new();
    let fire_risk = detector.register(
        CompositeExpr::seq(
            CompositeExpr::and(
                CompositeExpr::Primitive(heat.id()),
                CompositeExpr::Primitive(drought.id()),
            ),
            CompositeExpr::Primitive(storm.id()),
        ),
        60, // minutes
    );
    println!(
        "registered composite {fire_risk}: (heat AND drought) ; storm within 60 min over {:?}",
        detector.primitives(fire_risk)?
    );

    // A day of observations (time in minutes).
    let observations: [(u64, i64, i64, i64); 5] = [
        (0, 30, 60, 10),   // calm morning
        (120, 38, 45, 20), // heat arrives
        (150, 39, 15, 25), // drought too -> AND satisfied at t=150
        (190, 37, 18, 85), // storm within the window -> fire risk!
        (400, 36, 15, 90), // storm again, but the AND is stale by now
    ];
    for (t, temp, hum, wind) in observations {
        let e = Event::builder(&schema)
            .value("temperature", temp)?
            .value("humidity", hum)?
            .value("wind", wind)?
            .build();
        let receipt = broker.publish(&e)?;
        let fired = detector.observe(&receipt.matched, t);
        println!(
            "t={t:>3} min: matched {:?} -> composites fired: {:?}",
            receipt.matched, fired
        );
    }
    Ok(())
}
