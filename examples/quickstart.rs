//! Quickstart: define a schema, subscribe profiles, match events.
//!
//! Run with `cargo run --example quickstart`.

use ens::prelude::*;
use ens::types::parse::{parse_event, parse_profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The attribute universe (paper Example 1).
    let schema = Schema::builder()
        .attribute("temperature", Domain::int(-30, 50))?
        .attribute("humidity", Domain::int(0, 100))?
        .attribute("radiation", Domain::int(1, 100))?
        .build();

    // 2. Profiles — built programmatically or parsed from text.
    let mut profiles = ProfileSet::new(&schema);
    profiles.insert_with(|b| {
        b.predicate("temperature", Predicate::ge(35))?
            .predicate("humidity", Predicate::ge(90))
    })?;
    profiles.insert(parse_profile(
        &schema,
        "profile(temperature >= 30; humidity >= 80)",
        0.into(),
    )?);
    profiles.insert(parse_profile(
        &schema,
        "profile(temperature in [-30, -20]; humidity <= 5; radiation in [40, 100])",
        0.into(),
    )?);

    // 3. Build the profile tree and match events.
    let tree = ProfileTree::build(&profiles, &TreeConfig::default())?;
    println!(
        "tree: {} inner nodes, {} edges, {} leaves for {} profiles",
        tree.node_count(),
        tree.edge_count(),
        tree.leaf_count(),
        tree.profile_count()
    );

    let event = parse_event(
        &schema,
        "event(temperature = 36; humidity = 92; radiation = 10)",
    )?;
    let outcome = tree.match_event(&event)?;
    println!(
        "event matched {} profile(s) in {} comparison operations: {:?}",
        outcome.profiles().len(),
        outcome.ops(),
        outcome.profiles()
    );

    // 4. Or run everything through the notification broker.
    let broker = Broker::new(&schema, ens::service::BrokerConfig::default())?;
    let alerts = broker.subscribe_parsed("profile(temperature >= 35)")?;
    broker.publish(&event)?;
    if let Some(n) = alerts.try_recv() {
        println!(
            "broker delivered notification #{} to {}",
            n.sequence, n.subscription
        );
    }
    Ok(())
}
