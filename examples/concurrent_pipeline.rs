//! Concurrent pipeline — the broker's snapshot-swap read path under
//! simultaneous publishers and subscription churn, plus `publish_batch`
//! fan-out across shards.
//!
//! Four producer threads publish skewed stock-ticker traffic while a
//! churn thread registers and cancels watch subscriptions; matching is
//! lock-free against immutable filter snapshots, new subscriptions take
//! the overlay fast path, and the rebuild policy folds them into the
//! tree in the background of the write path.
//!
//! Run with `cargo run --release --example concurrent_pipeline`.

use std::sync::Arc;

use ens::filter::RebuildPolicy;
use ens::service::{Broker, BrokerConfig};
use ens::workloads::scenario;
use ens::workloads::EventGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = scenario::stock_schema();
    let mut rng = StdRng::seed_from_u64(7);

    let broker = Arc::new(Broker::new(
        &schema,
        BrokerConfig {
            shards: 4,
            rebuild: RebuildPolicy {
                max_overlay: 32,
                ..RebuildPolicy::default()
            },
            ..BrokerConfig::default()
        },
    )?);

    // A stable population of traders, bulk-loaded with one compaction
    // per shard.
    let stable = broker.subscribe_many(scenario::stock_profiles(500, &mut rng)?.iter().cloned())?;
    println!(
        "{} subscriptions across {} shards",
        broker.subscription_count(),
        broker.shard_count()
    );

    // Pre-sample the trade stream so producers only publish.
    let generator = EventGenerator::new(&schema, scenario::stock_event_model()?)?;
    let events: Vec<Arc<ens::types::Event>> = (0..8_000)
        .map(|_| Arc::new(generator.sample(&mut rng)))
        .collect();
    let churn_profiles: Vec<ens::types::Profile> = scenario::stock_profiles(64, &mut rng)?
        .iter()
        .cloned()
        .collect();

    // Four concurrent producers + one churning subscriber thread.
    std::thread::scope(|scope| {
        for slice in events.chunks(events.len() / 4) {
            let broker = Arc::clone(&broker);
            scope.spawn(move || {
                for e in slice {
                    broker.publish_shared(Arc::clone(e)).expect("publish");
                }
            });
        }
        let broker = Arc::clone(&broker);
        let churn = &churn_profiles;
        scope.spawn(move || {
            for p in churn {
                let sub = broker.subscribe_profile(p.clone()).expect("subscribe");
                std::thread::yield_now();
                broker.unsubscribe(sub.id()).expect("unsubscribe");
            }
        });
    });
    println!("after concurrent run:  {}", broker.metrics());

    // Batch publish: one call, one worker thread per shard, receipts in
    // input order and per-subscriber notifications in sequence order.
    let receipts = broker.publish_batch(&events[..1_000])?;
    let matched: usize = receipts.iter().map(|r| r.matched.len()).sum();
    println!(
        "publish_batch: {} events -> {} notifications",
        receipts.len(),
        matched
    );
    println!("after batch:           {}", broker.metrics());

    let delivered: usize = stable.iter().map(|s| s.drain().len()).sum();
    println!("stable subscribers drained {delivered} notifications");
    Ok(())
}
