//! Adaptive restructuring under distribution drift — the §5 scenario:
//! "the algorithm … has to maintain a history of events in order to
//! determine the event distribution". Traffic alternates between two
//! peaks; the adaptive filter notices the drift and reorders each node
//! so the currently hot subrange is scanned first.
//!
//! Run with `cargo run --example adaptive_service`.

use ens::dist::{Density, DistOverDomain};
use ens::filter::{
    AdaptiveFilter, AdaptivePolicy, Direction, SearchStrategy, TreeConfig, ValueOrder,
};
use ens::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::builder()
        .attribute("reading", Domain::int(0, 99))?
        .build();
    let mut profiles = ProfileSet::new(&schema);
    for v in 10..20 {
        profiles.insert_with(|b| b.predicate("reading", Predicate::eq(v)))?;
    }
    for v in 80..90 {
        profiles.insert_with(|b| b.predicate("reading", Predicate::eq(v)))?;
    }

    let config = TreeConfig {
        search: SearchStrategy::Linear(ValueOrder::EventProb(Direction::Descending)),
        ..TreeConfig::default()
    };
    let mut adaptive = AdaptiveFilter::new(
        &profiles,
        config,
        AdaptivePolicy {
            min_events: 300,
            drift_threshold: 0.25,
            decay_on_rebuild: true,
        },
    )?;

    let low = DistOverDomain::new(Density::peak(0.10, 0.10, 0.9)?, 100);
    let high = DistOverDomain::new(Density::peak(0.80, 0.10, 0.9)?, 100);
    let mut rng = StdRng::seed_from_u64(3);

    for (phase, dist) in [("low-peak", &low), ("high-peak", &high), ("low-peak", &low)]
        .iter()
        .enumerate()
        .map(|(i, (name, d))| ((i, *name), *d))
    {
        let (i, name) = phase;
        let mut ops = 0u64;
        let n = 3_000;
        for _ in 0..n {
            let idx = dist.sample_index(&mut rng);
            let e = Event::builder(&schema)
                .value("reading", idx as i64)?
                .build();
            ops += adaptive.process(&e)?.ops();
        }
        println!(
            "phase {i} ({name:<9}): {:.3} ops/event, {} rebuild(s) so far, drift now {:.3}",
            ops as f64 / n as f64,
            adaptive.rebuild_count(),
            adaptive.current_drift()?
        );
    }
    println!(
        "final tree scans the currently hot band first: hot hit costs {} op(s)",
        adaptive
            .tree()
            .match_event(&Event::builder(&schema).value("reading", 15)?.build())?
            .ops()
    );
    Ok(())
}
