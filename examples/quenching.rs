//! Quenching: reject unmatchable events at the producer (the Elvin
//! mechanism of §2, realised through the zero-subdomain `D0`).
//!
//! Run with `cargo run --example quenching`.

use ens::prelude::*;
use ens::service::BrokerConfig;
use ens::types::AttrId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::builder()
        .attribute("temperature", Domain::int(-30, 50))?
        .attribute("humidity", Domain::int(0, 100))?
        .build();

    let broker = Broker::new(
        &schema,
        BrokerConfig {
            quench_inbound: true,
            ..BrokerConfig::default()
        },
    )?;
    let _heat = broker.subscribe_parsed("profile(temperature >= 40)")?;
    let _frost = broker.subscribe_parsed("profile(temperature <= -15; humidity >= 80)")?;

    // What may a producer drop at the source?
    let advice = broker.quench_advice();
    let coverage = advice.coverage_fractions();
    println!("covered fraction per attribute: {coverage:?}");
    for (id, a) in schema.iter() {
        let dead: Vec<String> = advice
            .quenchable(id)
            .iter()
            .map(ToString::to_string)
            .collect();
        println!(
            "  {}: {} quenchable interval(s): {}",
            a.name(),
            dead.len(),
            dead.join(", ")
        );
    }
    let _ = AttrId::new(0);

    // Publish a mixed stream; the broker-side pre-filter drops the dead
    // ones before any tree work.
    let mut quenched = 0;
    for t in (-30..=50).step_by(5) {
        let e = Event::builder(&schema)
            .value("temperature", t)?
            .value("humidity", 50)?
            .build();
        let receipt = broker.publish(&e)?;
        quenched += i32::from(receipt.quenched);
    }
    let m = broker.metrics();
    println!(
        "published {} events; {} quenched without filtering, {} notifications, {:.2} ops/event overall",
        m.events_published,
        quenched,
        m.notifications_sent,
        m.avg_ops_per_event()
    );
    Ok(())
}
