//! Environmental monitoring with catastrophe warnings — the paper's §1
//! motivating scenario: sensor values are broadly distributed, but users
//! subscribe to a small range of high-importance values, so the
//! distribution-aware tree rejects almost all readings after one or two
//! comparisons.
//!
//! Run with `cargo run --example environmental_monitoring`.

use ens::filter::{
    AttributeMeasure, AttributeOrder, CostModel, Direction, ProfileTree, SearchStrategy,
    TreeConfig, ValueOrder,
};
use ens::workloads::scenario;
use ens::workloads::EventGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = scenario::environmental_schema();
    let mut rng = StdRng::seed_from_u64(7);
    let profiles = scenario::environmental_profiles(300, &mut rng)?;
    let joint = scenario::environmental_event_model()?;
    let generator = EventGenerator::new(&schema, joint.clone())?;

    println!(
        "{} catastrophe/comfort profiles over {schema}",
        profiles.len()
    );

    // Compare the plain tree against the fully distribution-optimised
    // one (V1 value order + A2 attribute order).
    let plain = ProfileTree::build(&profiles, &TreeConfig::default())?;
    let optimised = ProfileTree::build(
        &profiles,
        &TreeConfig {
            attribute_order: AttributeOrder::Selectivity {
                measure: AttributeMeasure::A2,
                direction: Direction::Descending,
            },
            search: SearchStrategy::Linear(ValueOrder::EventProb(Direction::Descending)),
            event_model: Some(joint.clone()),
            ..TreeConfig::default()
        },
    )?;

    for (name, tree) in [
        ("natural/natural-order", &plain),
        ("A2/V1-optimised", &optimised),
    ] {
        let expected = CostModel::new(tree, &joint)?.evaluate()?;
        println!(
            "{name:<24} expected {:>7.3} ops/event  (match probability {:.3})",
            expected.expected_total_ops(),
            expected.match_probability()
        );
    }

    // Measured confirmation over a sampled day of sensor readings.
    let mut ops = [0u64; 2];
    let mut alerts = 0u64;
    let n = 20_000;
    for _ in 0..n {
        let e = generator.sample(&mut rng);
        ops[0] += plain.match_event(&e)?.ops();
        let out = optimised.match_event(&e)?;
        ops[1] += out.ops();
        alerts += u64::from(out.is_match());
    }
    println!(
        "measured over {n} readings: plain {:.3} ops/event, optimised {:.3} ops/event, {alerts} alerts",
        ops[0] as f64 / n as f64,
        ops[1] as f64 / n as f64,
    );
    Ok(())
}
