//! Inspecting the profile tree: reproduce the paper's Example 1 / Fig. 1
//! structure, print the tree, the attribute selectivities and the
//! analytic cost breakdown, then reorder it like Fig. 2 and compare.
//!
//! Run with `cargo run --example tree_inspection`.

use ens::dist::{Density, DistOverDomain, JointDist};
use ens::filter::{
    attribute_selectivities, AttributeMeasure, AttributeOrder, CostModel, Direction, ProfileTree,
    SearchStrategy, TreeConfig, ValueOrder,
};
use ens::prelude::*;
use ens::types::parse::parse_profile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 1 of the paper.
    let schema = Schema::builder()
        .attribute("a1", Domain::int(-30, 50))?
        .attribute("a2", Domain::int(0, 100))?
        .attribute("a3", Domain::int(1, 100))?
        .build();
    let mut profiles = ProfileSet::new(&schema);
    for text in [
        "profile(a1 >= 35; a2 >= 90)",                         // P1
        "profile(a1 >= 30; a2 >= 90)",                         // P2
        "profile(a1 >= 30; a2 >= 90; a3 in [35, 50])",         // P3
        "profile(a1 in [-30, -20]; a2 <= 5; a3 in [40, 100])", // P4
        "profile(a1 >= 30; a2 >= 80)",                         // P5
    ] {
        profiles.insert(parse_profile(&schema, text, 0.into())?);
    }

    // The Example-3 event model (window mixtures over the grids).
    let w = |lo: f64, hi: f64, d: f64| Density::window(lo / d, hi / d);
    let joint = JointDist::independent(vec![
        DistOverDomain::new(
            Density::Mixture(vec![
                (0.02, w(0.0, 11.0, 81.0)),
                (0.17, w(11.0, 60.0, 81.0)),
                (0.01, w(60.0, 65.0, 81.0)),
                (0.80, w(65.0, 81.0, 81.0)),
            ]),
            81,
        ),
        DistOverDomain::new(
            Density::Mixture(vec![
                (0.05, w(0.0, 6.0, 101.0)),
                (0.60, w(6.0, 80.0, 101.0)),
                (0.25, w(80.0, 90.0, 101.0)),
                (0.10, w(90.0, 101.0, 101.0)),
            ]),
            101,
        ),
        DistOverDomain::new(
            Density::Mixture(vec![
                (0.90, w(0.0, 34.0, 100.0)),
                (0.05, w(34.0, 39.0, 100.0)),
                (0.02, w(39.0, 50.0, 100.0)),
                (0.03, w(50.0, 100.0, 100.0)),
            ]),
            100,
        ),
    ])?;

    let natural = ProfileTree::build(
        &profiles,
        &TreeConfig {
            event_model: Some(joint.clone()),
            ..TreeConfig::default()
        },
    )?;
    println!("=== Fig. 1: the natural-order profile tree ===");
    print!("{}", natural.render());

    let s1 = attribute_selectivities(AttributeMeasure::A1, natural.partitions(), None)?;
    let s2 = attribute_selectivities(
        AttributeMeasure::A2,
        natural.partitions(),
        natural.marginals(),
    )?;
    println!("\nattribute selectivities  A1 = {s1:?}");
    println!("                         A2 = {s2:?}");

    let reordered = ProfileTree::build(
        &profiles,
        &TreeConfig {
            attribute_order: AttributeOrder::Selectivity {
                measure: AttributeMeasure::A2,
                direction: Direction::Descending,
            },
            search: SearchStrategy::Linear(ValueOrder::EventProb(Direction::Descending)),
            event_model: Some(joint.clone()),
            ..TreeConfig::default()
        },
    )?;
    println!("\n=== Fig. 2: reordered by Measure A2, values by V1 ===");
    print!("{}", reordered.render());

    println!("\n=== expected cost per event (Eq. 2) ===");
    for (name, tree) in [("natural", &natural), ("A2 + V1", &reordered)] {
        let cost = CostModel::new(tree, &joint)?.evaluate()?;
        print!("{name:<9}: R = {:.3} (", cost.expected_total_ops());
        for (k, level) in cost.per_level().iter().enumerate() {
            if k > 0 {
                print!(" + ");
            }
            print!(
                "{}: {:.3}",
                tree.schema().attribute(level.attr).name(),
                level.match_ops + level.reject_ops
            );
        }
        println!(")");
    }
    Ok(())
}
