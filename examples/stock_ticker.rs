//! Stock ticker — the paper's other §1 scenario: "users are mainly
//! interested in a small range of values for certain shares; the event
//! data display high concentrations at selected values". The broker
//! filters a skewed trade stream and the adaptive tree keeps the hot
//! price bands at the front of every node.
//!
//! Run with `cargo run --example stock_ticker`.

use ens::filter::{Direction, RebuildPolicy, SearchStrategy, TreeConfig, ValueOrder};
use ens::service::{Broker, BrokerConfig};
use ens::workloads::scenario;
use ens::workloads::EventGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = scenario::stock_schema();
    let mut rng = StdRng::seed_from_u64(99);

    let broker = Broker::new(
        &schema,
        BrokerConfig {
            tree: TreeConfig {
                search: SearchStrategy::Linear(ValueOrder::EventProb(Direction::Descending)),
                ..TreeConfig::default()
            },
            rebuild: RebuildPolicy {
                min_events: 2_000,
                drift_threshold: 0.2,
                decay_on_rebuild: true,
                ..RebuildPolicy::default()
            },
            history_capacity: 16,
            quench_inbound: false,
            ..BrokerConfig::default()
        },
    )?;

    // Traders watch narrow price bands of specific symbols.
    let profiles = scenario::stock_profiles(400, &mut rng)?;
    let mut handles = Vec::new();
    for p in profiles.iter() {
        handles.push(broker.subscribe_profile(p.clone())?);
    }
    println!("{} subscriptions registered", broker.subscription_count());

    // A skewed trade stream (hot symbols, two active price bands).
    let generator = EventGenerator::new(&schema, scenario::stock_event_model()?)?;
    let n = 10_000;
    for _ in 0..n {
        broker.publish(&generator.sample(&mut rng))?;
    }

    let m = broker.metrics();
    println!(
        "published {} trades, delivered {} notifications ({:.4} per trade)",
        m.events_published,
        m.notifications_sent,
        m.notifications_sent as f64 / m.events_published as f64
    );
    println!(
        "filter spent {:.3} comparison ops per trade; tree rebuilt {} time(s)",
        m.avg_ops_per_event(),
        m.tree_rebuilds
    );

    let busiest = handles
        .iter()
        .max_by_key(|h| h.pending())
        .expect("at least one subscription");
    println!(
        "busiest subscription {} queued {} notifications",
        busiest.id(),
        busiest.pending()
    );
    Ok(())
}
